"""Eager prediction: intra-iteration output sparsity (paper II-B, IV-D).

The predictor approximates the attention score in the log domain (cheap
shift-add hardware), then uses the prediction to decide what the exact
engine may skip:

- per predicted-score row, only the top-k elements are kept; the rest are
  treated as zero after softmax (their probability is negligible);
- if the gap between a row's largest and second-largest predicted score
  exceeds ``q_th``, the whole row collapses to a one-hot distribution: the
  exact score row, the softmax and the row's Q projection are all skipped;
- a source column whose predicted scores are dropped in *every* row needs
  no K or V projection at all.

The paper's TS-LOD refinement (two-step leading-one detection) is what
makes the prediction accurate enough for diffusion models (Fig. 15).

:class:`EagerPredictor` drives one generation at a time;
:class:`BatchedEagerPredictor` applies the same decisions over a leading
batch axis for the ``repro.serve`` serving layer, with per-request
quantization scales and per-request statistics so each request computes
exactly what a sequential run would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ExionConfig
from repro.core.logdomain import (
    LogOperand,
    log_domain_matmul,
    log_domain_matmul_batched,
    log_domain_matmul_prepared,
    prepare_log_operand,
)
from repro.core.sparsity import RunStats
from repro.models.activations import softmax
from repro.models.attention import AttentionTrace, MultiHeadAttention


@dataclass
class HeadDecision:
    """Skip decisions for one attention head."""

    keep: np.ndarray  # (tq, tk) bool: score elements to compute exactly
    one_hot_rows: np.ndarray  # (tq,) bool: rows collapsed by dominance
    one_hot_cols: np.ndarray  # (tq,) int: argmax column of one-hot rows

    @property
    def skipped_elements(self) -> int:
        return int(self.keep.size - self.keep.sum())


class EagerPredictor:
    """Builds attention executors implementing eager prediction."""

    def __init__(self, config: ExionConfig, stats: Optional[RunStats] = None,
                 collect_keepmasks: bool = False) -> None:
        self.config = config
        self.stats = stats if stats is not None else RunStats()
        self.collect_keepmasks = collect_keepmasks

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_scores(
        self, layer: MultiHeadAttention, x: np.ndarray, kv_input: np.ndarray
    ) -> np.ndarray:
        """Log-domain predicted attention scores, shape ``(h, tq, tk)``."""
        mode = self.config.lod_mode
        bits = self.config.prediction_bits
        q_pred = log_domain_matmul(x, layer.wq.weight, mode, bits)
        k_pred = log_domain_matmul(kv_input, layer.wk.weight, mode, bits)
        if layer.wq.bias is not None:
            q_pred = q_pred + layer.wq.bias
        if layer.wk.bias is not None:
            k_pred = k_pred + layer.wk.bias
        qh = layer.split_heads(q_pred)
        kh = layer.split_heads(k_pred)
        return np.einsum("htd,hsd->hts", qh, kh) * layer.scale

    def decide(self, predicted: np.ndarray) -> list[HeadDecision]:
        """Per-head keep masks and one-hot rows from predicted scores."""
        decisions = []
        for head_scores in predicted:
            decisions.append(self._decide_head(head_scores))
        return decisions

    def _decide_head(self, scores: np.ndarray) -> HeadDecision:
        tq, tk = scores.shape
        keep_count = max(1, int(np.ceil(self.config.top_k_ratio * tk)))

        keep = np.zeros((tq, tk), dtype=bool)
        if keep_count >= tk:
            keep[:] = True
        else:
            # Indices of the top-k predicted scores per row.
            top_idx = np.argpartition(-scores, keep_count - 1, axis=1)[:, :keep_count]
            np.put_along_axis(keep, top_idx, True, axis=1)

        one_hot_cols = np.argmax(scores, axis=1)
        if tk >= 2:
            sorted_scores = np.sort(scores, axis=1)
            gap = sorted_scores[:, -1] - sorted_scores[:, -2]
            one_hot_rows = gap > self.config.q_threshold
        else:
            one_hot_rows = np.ones(tq, dtype=bool)
        # A one-hot row skips its entire exact-score computation.
        keep[one_hot_rows] = False
        return HeadDecision(keep=keep, one_hot_rows=one_hot_rows,
                            one_hot_cols=one_hot_cols)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def executor(self):
        """An ``AttentionExecutor`` running EP-guided sparse attention."""

        def run(layer: MultiHeadAttention, x: np.ndarray,
                context: Optional[np.ndarray]):
            return self._run(layer, x, context)

        return run

    def _run(self, layer: MultiHeadAttention, x: np.ndarray,
             context: Optional[np.ndarray]):
        kv_input = x if context is None else context
        tq = x.shape[0]
        tk = kv_input.shape[0]
        heads = layer.num_heads

        predicted = self.predict_scores(layer, x, kv_input)
        decisions = self.decide(predicted)

        # Projection skipping derived from the decisions (paper II-B):
        # rows one-hot in every head skip Q projection; columns dropped in
        # every row of every head skip K and V projection.
        q_row_needed = np.zeros(tq, dtype=bool)
        kv_col_needed = np.zeros(tk, dtype=bool)
        for dec in decisions:
            q_row_needed |= ~dec.one_hot_rows
            kv_col_needed |= dec.keep.any(axis=0)
            # One-hot rows still read V at their argmax column.
            kv_col_needed[np.unique(dec.one_hot_cols[dec.one_hot_rows])] = True

        q = layer.split_heads(layer.wq(x))
        k = layer.split_heads(layer.wk(kv_input))
        v = layer.split_heads(layer.wv(kv_input))

        scores = np.full((heads, tq, tk), -np.inf)
        probs = np.zeros((heads, tq, tk))
        attended = np.zeros((heads, tq, layer.head_dim))
        skipped = 0
        for h, dec in enumerate(decisions):
            exact = np.einsum("td,sd->ts", q[h], k[h]) * layer.scale
            masked = np.where(dec.keep, exact, -np.inf)
            normal_rows = ~dec.one_hot_rows & dec.keep.any(axis=1)
            if np.any(normal_rows):
                probs[h, normal_rows] = softmax(masked[normal_rows], axis=-1)
            # Rows with nothing kept and no dominance fall back to the
            # predicted argmax (never happens with top_k >= 1 but keeps the
            # executor total).
            oh_rows = dec.one_hot_rows | ~dec.keep.any(axis=1)
            for r in np.flatnonzero(oh_rows):
                probs[h, r, dec.one_hot_cols[r]] = 1.0
                attended[h, r] = v[h, dec.one_hot_cols[r]]
            nr = np.flatnonzero(~oh_rows)
            if nr.size:
                attended[h, nr] = probs[h, nr] @ v[h]
            scores[h] = masked
            skipped += dec.skipped_elements

        out = layer.wo(layer.merge_heads(attended))

        # ------------------------------------------------------------------
        # statistics
        # ------------------------------------------------------------------
        total_scores = heads * tq * tk
        head_dim = layer.head_dim
        self.stats.attention_scores.add(
            total_scores * head_dim, (total_scores - skipped) * head_dim
        )
        q_rows_skipped = int(tq - q_row_needed.sum())
        kv_cols_skipped = int(tk - kv_col_needed.sum())
        dim_in = layer.wq.in_features
        self.stats.q_projection.add(
            tq * dim_in * layer.dim, int(q_row_needed.sum()) * dim_in * layer.dim
        )
        self.stats.kv_projection.add(
            2 * tk * layer.wk.in_features * layer.dim,
            2 * int(kv_col_needed.sum()) * layer.wk.in_features * layer.dim,
        )
        sparsity = skipped / total_scores if total_scores else 0.0
        self.stats.attention_sparsities.append(sparsity)
        # Log-domain prediction overhead (counted against EXION in the HW
        # model): Q/K prediction plus predicted-score MMUL.
        self.stats.prediction_overhead_macs += (
            (tq + tk) * dim_in * layer.dim + total_scores * head_dim
        )

        keep_all = np.stack([d.keep for d in decisions])
        if self.collect_keepmasks:
            self.stats.attention_keepmasks.append(keep_all)

        trace = AttentionTrace(
            scores=scores,
            probs=probs,
            output_sparsity=sparsity,
            skipped_score_elements=skipped,
            total_score_elements=total_scores,
            q_rows_skipped=q_rows_skipped * heads,
            q_rows_total=tq * heads,
            kv_cols_skipped=kv_cols_skipped * heads,
            kv_cols_total=tk * heads,
        )
        return out, trace


# ----------------------------------------------------------------------
# compiled halves (repro.exec)
# ----------------------------------------------------------------------
@dataclass
class CompiledPrediction:
    """Plan-time half of eager prediction for one attention layer.

    The Q/K weight matrices are constant across every iteration, so their
    quantize + TS-LOD approximation (the dominant cost of
    :func:`log_domain_matmul`) is hoisted out of the step loop.
    """

    wq_operand: LogOperand
    wk_operand: LogOperand

    @classmethod
    def for_layer(
        cls, layer: MultiHeadAttention, mode: str, bits: int
    ) -> "CompiledPrediction":
        return cls(
            wq_operand=prepare_log_operand(layer.wq.weight, mode, bits),
            wk_operand=prepare_log_operand(layer.wk.weight, mode, bits),
        )


def ep_decide(
    predicted: np.ndarray, top_k_ratio: float, q_threshold: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :meth:`EagerPredictor._decide_head` over stacked heads.

    Top-k selection, dominance gap and argmax all act along the last axis
    only, so each head slice gets exactly the per-head decision. Returns
    ``(keep, one_hot_rows, one_hot_cols)`` shaped ``(heads, tq, tk)``,
    ``(heads, tq)``, ``(heads, tq)``.
    """
    tk = predicted.shape[-1]
    keep_count = max(1, int(np.ceil(top_k_ratio * tk)))

    keep = np.zeros(predicted.shape, dtype=bool)
    if keep_count >= tk:
        keep[:] = True
    else:
        top_idx = np.argpartition(
            -predicted, keep_count - 1, axis=-1
        )[..., :keep_count]
        np.put_along_axis(keep, top_idx, True, axis=-1)

    one_hot_cols = np.argmax(predicted, axis=-1)
    if tk >= 2:
        sorted_scores = np.sort(predicted, axis=-1)
        gap = sorted_scores[..., -1] - sorted_scores[..., -2]
        one_hot_rows = gap > q_threshold
    else:
        one_hot_rows = np.ones(predicted.shape[:-1], dtype=bool)
    keep[one_hot_rows] = False
    return keep, one_hot_rows, one_hot_cols


def ep_attention_step(
    layer: MultiHeadAttention,
    x: np.ndarray,
    context: Optional[np.ndarray],
    pred: CompiledPrediction,
    config: ExionConfig,
    stats: RunStats,
    collect_keepmasks: bool = False,
    kv: Optional[tuple] = None,
) -> np.ndarray:
    """Step-time half of one EP attention layer, bit-identical to
    :meth:`EagerPredictor._run` minus the trace.

    Differences are purely plan-time hoists: the weight operands come
    prepared in ``pred``; for self-attention the activation is quantized
    once and shared between the Q and K predictions (both interpreted
    calls quantize the same ``x``, deterministically); for cross-attention
    the caller may pass ``kv = (kh_pred, k, v)`` computed once per
    generation since the context never changes between iterations. Every
    GEMM keeps the interpreted call's operand shapes so BLAS kernel
    selection — and therefore the last ULP — matches.
    """
    kv_input = x if context is None else context
    tq = x.shape[0]
    tk = kv_input.shape[0]
    heads = layer.num_heads
    mode = config.lod_mode
    bits = config.prediction_bits

    x_operand = prepare_log_operand(x, mode, bits)
    q_pred = log_domain_matmul_prepared(x_operand, pred.wq_operand)
    if layer.wq.bias is not None:
        q_pred = q_pred + layer.wq.bias
    qh = layer.split_heads(q_pred)

    if kv is not None:
        kh, k, v = kv
    else:
        k_operand = (
            x_operand if context is None
            else prepare_log_operand(kv_input, mode, bits)
        )
        k_pred = log_domain_matmul_prepared(k_operand, pred.wk_operand)
        if layer.wk.bias is not None:
            k_pred = k_pred + layer.wk.bias
        kh = layer.split_heads(k_pred)
        k = layer.split_heads(layer.wk(kv_input))
        v = layer.split_heads(layer.wv(kv_input))

    predicted = np.einsum("htd,hsd->hts", qh, kh) * layer.scale
    keep, one_hot_rows, one_hot_cols = ep_decide(
        predicted, config.top_k_ratio, config.q_threshold
    )

    q = layer.split_heads(layer.wq(x))

    exact = np.einsum("htd,hsd->hts", q, k) * layer.scale
    masked = np.where(keep, exact, -np.inf)

    has_keep = keep.any(axis=-1)  # (heads, tq)
    oh_rows = one_hot_rows | ~has_keep
    normal_rows = ~oh_rows
    probs = np.zeros((heads, tq, tk))
    if np.any(normal_rows):
        probs[normal_rows] = softmax(masked[normal_rows], axis=-1)

    hh, rr = np.nonzero(oh_rows)
    cc = one_hot_cols[hh, rr]
    probs[hh, rr, cc] = 1.0
    attended = np.zeros((heads, tq, layer.head_dim))
    attended[hh, rr] = v[hh, cc]
    # Per-head row-subset GEMM: BLAS picks different kernels for different
    # row counts, so a stacked batched matmul would drift by an ULP.
    for h in range(heads):
        nr = np.flatnonzero(normal_rows[h])
        if nr.size:
            attended[h, nr] = probs[h, nr] @ v[h]

    out = layer.wo(layer.merge_heads(attended))

    # Statistics: same arithmetic as EagerPredictor._run.
    skipped = int(keep.size - keep.sum())
    total_scores = heads * tq * tk
    head_dim = layer.head_dim
    dim_in = layer.wq.in_features
    stats.attention_scores.add(
        total_scores * head_dim, (total_scores - skipped) * head_dim
    )
    q_row_needed = (~one_hot_rows).any(axis=0)
    kv_col_needed = keep.any(axis=(0, 1))
    kv_col_needed[one_hot_cols[one_hot_rows]] = True
    stats.q_projection.add(
        tq * dim_in * layer.dim, int(q_row_needed.sum()) * dim_in * layer.dim
    )
    stats.kv_projection.add(
        2 * tk * layer.wk.in_features * layer.dim,
        2 * int(kv_col_needed.sum()) * layer.wk.in_features * layer.dim,
    )
    sparsity = skipped / total_scores if total_scores else 0.0
    stats.attention_sparsities.append(sparsity)
    stats.prediction_overhead_macs += (
        (tq + tk) * dim_in * layer.dim + total_scores * head_dim
    )
    if collect_keepmasks:
        stats.attention_keepmasks.append(keep)
    return out


def ep_cross_kv(
    layer: MultiHeadAttention,
    context: np.ndarray,
    pred: CompiledPrediction,
    config: ExionConfig,
) -> tuple:
    """Per-generation cross-attention constants for :func:`ep_attention_step`.

    The conditioning context is fixed for a whole generation, so the
    predicted-K, exact-K and exact-V head stacks it induces are too.
    """
    c_operand = prepare_log_operand(
        context, config.lod_mode, config.prediction_bits
    )
    k_pred = log_domain_matmul_prepared(c_operand, pred.wk_operand)
    if layer.wk.bias is not None:
        k_pred = k_pred + layer.wk.bias
    return (
        layer.split_heads(k_pred),
        layer.split_heads(layer.wk(context)),
        layer.split_heads(layer.wv(context)),
    )


def _split_heads_batched(x: np.ndarray, num_heads: int) -> np.ndarray:
    """Reshape ``(batch, tokens, dim)`` into ``(batch, heads, tokens, hd)``."""
    batch, tokens, dim = x.shape
    return x.reshape(batch, tokens, num_heads, dim // num_heads).transpose(
        0, 2, 1, 3
    )


def _merge_heads_batched(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_split_heads_batched`."""
    batch, heads, tokens, head_dim = x.shape
    return x.transpose(0, 2, 1, 3).reshape(batch, tokens, heads * head_dim)


@dataclass
class BatchedDecision:
    """Skip decisions for every (request, head) pair of a micro-batch."""

    keep: np.ndarray  # (batch, heads, tq, tk) bool
    one_hot_rows: np.ndarray  # (batch, heads, tq) bool: dominance collapse
    one_hot_cols: np.ndarray  # (batch, heads, tq) int: argmax columns


class BatchedEagerPredictor:
    """Eager prediction over a ``(batch, tokens, dim)`` activation stack.

    Predictions are quantized per request (`log_domain_matmul_batched`),
    decisions are taken per (request, head) score matrix, and statistics
    land in one :class:`RunStats` per request, so the batched run matches
    sequential :class:`EagerPredictor` runs request for request.
    """

    def __init__(self, config: ExionConfig, batch_stats: list,
                 collect_keepmasks: bool = False) -> None:
        if not batch_stats:
            raise ValueError("need at least one per-request RunStats")
        self.config = config
        self.batch_stats = list(batch_stats)
        self.collect_keepmasks = collect_keepmasks

    @property
    def batch_size(self) -> int:
        return len(self.batch_stats)

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def predict_scores(
        self, layer: MultiHeadAttention, x: np.ndarray, kv_input: np.ndarray
    ) -> np.ndarray:
        """Predicted attention scores, shape ``(batch, heads, tq, tk)``."""
        mode = self.config.lod_mode
        bits = self.config.prediction_bits
        q_pred = log_domain_matmul_batched(x, layer.wq.weight, mode, bits)
        k_pred = log_domain_matmul_batched(kv_input, layer.wk.weight, mode, bits)
        if layer.wq.bias is not None:
            q_pred = q_pred + layer.wq.bias
        if layer.wk.bias is not None:
            k_pred = k_pred + layer.wk.bias
        qh = _split_heads_batched(q_pred, layer.num_heads)
        kh = _split_heads_batched(k_pred, layer.num_heads)
        return np.einsum("bhtd,bhsd->bhts", qh, kh) * layer.scale

    def decide(self, predicted: np.ndarray) -> BatchedDecision:
        """Keep masks and one-hot rows for every (request, head) pair.

        Row-wise operations (top-k selection, dominance gap, argmax) act
        along the last axis only, so each (request, head) slice gets the
        decisions :meth:`EagerPredictor._decide_head` would take on it.
        """
        tk = predicted.shape[-1]
        keep_count = max(1, int(np.ceil(self.config.top_k_ratio * tk)))

        keep = np.zeros(predicted.shape, dtype=bool)
        if keep_count >= tk:
            keep[:] = True
        else:
            top_idx = np.argpartition(
                -predicted, keep_count - 1, axis=-1
            )[..., :keep_count]
            np.put_along_axis(keep, top_idx, True, axis=-1)

        one_hot_cols = np.argmax(predicted, axis=-1)
        if tk >= 2:
            sorted_scores = np.sort(predicted, axis=-1)
            gap = sorted_scores[..., -1] - sorted_scores[..., -2]
            one_hot_rows = gap > self.config.q_threshold
        else:
            one_hot_rows = np.ones(predicted.shape[:-1], dtype=bool)
        keep[one_hot_rows] = False
        return BatchedDecision(keep=keep, one_hot_rows=one_hot_rows,
                               one_hot_cols=one_hot_cols)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, layer: MultiHeadAttention, x: np.ndarray,
            context: Optional[np.ndarray]) -> np.ndarray:
        """EP-guided sparse attention over the batched input."""
        kv_input = x if context is None else context
        batch, tq, _ = x.shape
        tk = kv_input.shape[1]
        heads = layer.num_heads
        if batch != self.batch_size:
            raise ValueError(
                f"expected batch {self.batch_size}, got {batch}"
            )

        predicted = self.predict_scores(layer, x, kv_input)
        dec = self.decide(predicted)

        q = _split_heads_batched(layer.wq(x), heads)
        k = _split_heads_batched(layer.wk(kv_input), heads)
        v = _split_heads_batched(layer.wv(kv_input), heads)

        exact = np.einsum("bhtd,bhsd->bhts", q, k) * layer.scale
        masked = np.where(dec.keep, exact, -np.inf)

        has_keep = dec.keep.any(axis=-1)  # (batch, heads, tq)
        oh_rows = dec.one_hot_rows | ~has_keep
        normal_rows = ~oh_rows
        probs = np.zeros((batch, heads, tq, tk))
        if np.any(normal_rows):
            probs[normal_rows] = softmax(masked[normal_rows], axis=-1)

        bb, hh, rr = np.nonzero(oh_rows)
        cc = dec.one_hot_cols[bb, hh, rr]
        probs[bb, hh, rr, cc] = 1.0
        attended = np.zeros((batch, heads, tq, layer.head_dim))
        attended[bb, hh, rr] = v[bb, hh, cc]
        # The normal-row GEMM runs on exactly the row subset the sequential
        # executor uses: BLAS picks different kernels for different row
        # counts, so a full-matrix matmul would drift by an ULP.
        for b in range(batch):
            for h in range(heads):
                nr = np.flatnonzero(normal_rows[b, h])
                if nr.size:
                    attended[b, h, nr] = probs[b, h, nr] @ v[b, h]

        out = layer.wo(_merge_heads_batched(attended))
        self._record_stats(layer, dec, tq, tk, heads)
        return out

    def _record_stats(self, layer: MultiHeadAttention, dec: BatchedDecision,
                      tq: int, tk: int, heads: int) -> None:
        batch = self.batch_size
        total_scores = heads * tq * tk
        head_dim = layer.head_dim
        dim_in = layer.wq.in_features

        kept = dec.keep.reshape(batch, -1).sum(axis=1)
        # Projection skipping (paper II-B): a row one-hot in every head
        # skips Q projection; a column kept nowhere (and never the argmax
        # of a one-hot row) skips K and V projection.
        q_rows_needed = (~dec.one_hot_rows).any(axis=1).sum(axis=1)
        kv_needed = dec.keep.any(axis=(1, 2))  # (batch, tk)
        bb, hh, rr = np.nonzero(dec.one_hot_rows)
        kv_needed[bb, dec.one_hot_cols[bb, hh, rr]] = True
        kv_cols_needed = kv_needed.sum(axis=1)

        for b, stats in enumerate(self.batch_stats):
            skipped = total_scores - int(kept[b])
            stats.attention_scores.add(
                total_scores * head_dim, (total_scores - skipped) * head_dim
            )
            stats.q_projection.add(
                tq * dim_in * layer.dim,
                int(q_rows_needed[b]) * dim_in * layer.dim,
            )
            stats.kv_projection.add(
                2 * tk * layer.wk.in_features * layer.dim,
                2 * int(kv_cols_needed[b]) * layer.wk.in_features * layer.dim,
            )
            sparsity = skipped / total_scores if total_scores else 0.0
            stats.attention_sparsities.append(sparsity)
            stats.prediction_overhead_macs += (
                (tq + tk) * dim_in * layer.dim + total_scores * head_dim
            )
            if self.collect_keepmasks:
                # Copy: a view would pin the whole batch-wide keep array
                # through any single request's retained stats.
                stats.attention_keepmasks.append(dec.keep[b].copy())
