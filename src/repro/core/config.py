"""Configuration for EXION's software-level optimizations."""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional


@dataclass(frozen=True)
class ExionConfig:
    """Knobs for the FFN-Reuse and eager-prediction algorithms.

    Defaults follow the paper's Table I conventions; per-model settings come
    from :meth:`for_model`. The four ablation configurations of the
    evaluation (Base / EP / FFNR / All) are expressed with the two enable
    flags.
    """

    enable_ffn_reuse: bool = True
    enable_eager_prediction: bool = True

    # FFN-Reuse (paper Section III-A).
    sparse_iters_n: int = 4  # sparse iterations after each dense iteration
    ffn_threshold: Optional[float] = None  # fixed threshold; None = quantile
    ffn_target_sparsity: float = 0.90  # quantile target when threshold is None

    # Eager prediction (paper Sections II-B, IV-D).
    q_threshold: float = 0.5  # dominance threshold q_th on predicted scores
    top_k_ratio: float = 0.5  # fraction of each score row kept
    lod_mode: str = "ts_lod"  # "lod", "ts_lod" or "exact" prediction
    prediction_bits: int = 12  # integer width of the log-domain operands

    def __post_init__(self) -> None:
        if self.sparse_iters_n < 0:
            raise ValueError("sparse_iters_n must be >= 0")
        if not 0.0 <= self.ffn_target_sparsity < 1.0:
            raise ValueError("ffn_target_sparsity must be in [0, 1)")
        if not 0.0 < self.top_k_ratio <= 1.0:
            raise ValueError("top_k_ratio must be in (0, 1]")
        if self.q_threshold < 0.0:
            raise ValueError("q_threshold must be >= 0")
        if self.lod_mode not in ("lod", "ts_lod", "exact"):
            raise ValueError(f"unknown lod_mode {self.lod_mode!r}")
        if not 2 <= self.prediction_bits <= 16:
            raise ValueError("prediction_bits must be in [2, 16]")

    @classmethod
    def for_model(
        cls,
        name: str,
        enable_ffn_reuse: bool = True,
        enable_eager_prediction: bool = True,
        lod_mode: str = "ts_lod",
    ) -> "ExionConfig":
        """Table I configuration for a benchmark model."""
        from repro.workloads.specs import get_spec

        spec = get_spec(name)
        return cls(
            enable_ffn_reuse=enable_ffn_reuse,
            enable_eager_prediction=enable_eager_prediction,
            sparse_iters_n=spec.sparse_iters_n,
            ffn_target_sparsity=spec.target_inter_sparsity,
            q_threshold=spec.q_threshold,
            top_k_ratio=spec.top_k_ratio,
            lod_mode=lod_mode,
        )

    def ablation(self, which: str) -> "ExionConfig":
        """Return the Base / EP / FFNR / All variant of this config."""
        variants = {
            "base": (False, False),
            "ep": (False, True),
            "ffnr": (True, False),
            "all": (True, True),
        }
        if which not in variants:
            raise ValueError(f"unknown ablation {which!r}; use base/ep/ffnr/all")
        ffnr, ep = variants[which]
        return replace(
            self, enable_ffn_reuse=ffnr, enable_eager_prediction=ep
        )
