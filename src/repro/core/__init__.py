"""EXION's primary contribution: output-sparsity algorithms and ConMerge.

- :mod:`repro.core.ffn_reuse` — inter-iteration output sparsity (Fig. 6),
- :mod:`repro.core.eager_prediction` — intra-iteration output sparsity
  via log-domain attention-score prediction (Fig. 5, Fig. 15),
- :mod:`repro.core.conmerge` — data compaction of sparse output matrices
  (Figs. 8, 9, 12, 13, 14),
- :mod:`repro.core.pipeline` — end-to-end EXION inference over a benchmark
  model with statistics collection.
"""

from repro.core.bitmask import Bitmask
from repro.core.config import ExionConfig
from repro.core.eager_prediction import BatchedEagerPredictor, EagerPredictor
from repro.core.ffn_reuse import BatchedFFNReuse, FFNReuse
from repro.core.logdomain import (
    leading_one_position,
    lod_approximate,
    log_domain_matmul,
    log_domain_matmul_batched,
    ts_lod_approximate,
)
from repro.core.pipeline import ExionPipeline, GenerationResult
from repro.core.sparsity import RunStats

__all__ = [
    "BatchedEagerPredictor",
    "BatchedFFNReuse",
    "Bitmask",
    "EagerPredictor",
    "ExionConfig",
    "ExionPipeline",
    "FFNReuse",
    "GenerationResult",
    "RunStats",
    "leading_one_position",
    "lod_approximate",
    "log_domain_matmul",
    "log_domain_matmul_batched",
    "ts_lod_approximate",
]
