"""ConMerge vector generation: the end-to-end compaction pass.

``conmerge`` processes one row-tile of an output bitmask the way the CAU +
CVG do in hardware: columns stream through the SortBuffer (condensing
all-zero columns, coarse-sorting the rest), fresh tile blocks form from the
sorted order, and merging pairs the densest block with the sparsest, then
the result with the next sparsest ("(Dense+Sparse) + Sparse_Next",
Fig. 13), emitting conflict vectors and control maps per merged block.

``conmerge_tiled`` applies the pass over every 16-row tile of a large
output matrix, which is how the hardware actually executes FFN layers with
many tokens.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.bitmask import Bitmask
from repro.core.conmerge.blocks import TileBlock
from repro.core.conmerge.merge import greedy_merge, try_merge
from repro.core.conmerge.sortbuffer import ColumnEntry, SortBuffer
from repro.core.conmerge.vectors import CellAssignment


@dataclass
class ConMergeResult:
    """Compaction outcome for one row-tile."""

    rows: int
    original_cols: int
    condensed_cols: int
    blocks: list = field(default_factory=list)
    cycles: int = 0
    merge_attempts: int = 0
    merge_successes: int = 0

    @property
    def physical_columns(self) -> int:
        """DPU column slots actually occupied across all blocks."""
        total = 0
        for block in self.blocks:
            occupied = set()
            for cell in block.entries():
                occupied.add(cell.col_slot)
            total += len(occupied)
        return total

    @property
    def remaining_column_ratio(self) -> float:
        """Physical columns over original columns (Figs. 8, 9, 17 metric)."""
        if self.original_cols == 0:
            return 0.0
        return self.physical_columns / self.original_cols

    @property
    def condense_ratio(self) -> float:
        """Columns remaining after condensing alone."""
        if self.original_cols == 0:
            return 0.0
        return self.condensed_cols / self.original_cols

    @property
    def utilization(self) -> float:
        """Mean active-DPU fraction when the blocks execute."""
        if not self.blocks:
            return 0.0
        cells = sum(b.num_elements for b in self.blocks)
        area = sum(b.rows * b.width for b in self.blocks)
        return cells / area

    def element_positions(self) -> set:
        """All (input_row, origin_col) pairs covered by the blocks."""
        positions = set()
        for block in self.blocks:
            for cell in block.entries():
                positions.add((cell.input_row, cell.origin_col))
        return positions


def _blocks_from_entries(entries: list, rows: int, width: int) -> list:
    """Fresh width-wide blocks from ordered SortBuffer entries."""
    blocks = []
    for start in range(0, len(entries), width):
        chunk = entries[start : start + width]
        block = TileBlock(rows=rows, width=width)
        for slot, entry in enumerate(chunk):
            for lane in np.flatnonzero(entry.occupancy):
                block.cells[int(lane)][slot] = CellAssignment(
                    lane=int(lane),
                    col_slot=slot,
                    input_row=int(lane),
                    origin_col=entry.origin_col,
                    buffer_index=0,
                )
        blocks.append(block)
    return blocks


def _paired_merge(blocks: list) -> tuple:
    """Dense-with-sparse pairing over blocks ordered densest first."""
    dq = deque(blocks)
    out = []
    cycles = 0
    attempts = 0
    successes = 0
    while dq:
        base = dq.popleft()  # densest remaining
        while dq and base.num_origins < 3:
            merged = None
            # Try partners from the sparsest end inward.
            for i in range(len(dq) - 1, -1, -1):
                attempt = try_merge(base, dq[i])
                cycles += attempt.cycles
                attempts += 1
                if attempt.success:
                    merged = attempt.merged
                    del dq[i]
                    successes += 1
                    break
            if merged is None:
                break
            base = merged
        out.append(base)
    return out, cycles, attempts, successes


def conmerge(
    mask: Bitmask,
    width: int = 16,
    sort: bool = True,
    class_capacity: int = 256,
) -> ConMergeResult:
    """Run condensing + merging on one row-tile bitmask.

    ``sort=False`` skips the SortBuffer ordering and merges blocks in
    arrival order — the Fig. 12 baseline.
    """
    result = ConMergeResult(
        rows=mask.rows, original_cols=mask.cols, condensed_cols=0
    )
    buffer = SortBuffer(rows=mask.rows, class_capacity=class_capacity)
    if sort:
        stored = buffer.insert_mask(mask)
        entries = buffer.drain_sorted()
    else:
        entries = [
            ColumnEntry(origin_col=c, occupancy=mask.column(c))
            for c in mask.nonzero_columns()
        ]
        stored = len(entries)
    result.condensed_cols = stored
    if not entries:
        return result

    blocks = _blocks_from_entries(entries, mask.rows, width)
    if sort:
        merged, cycles, attempts, successes = _paired_merge(blocks)
    else:
        merged, cycles, attempts, successes = greedy_merge(blocks)
    result.blocks = merged
    result.cycles = cycles
    result.merge_attempts = attempts
    result.merge_successes = successes
    return result


@dataclass
class TiledConMergeResult:
    """Aggregate of per-row-tile ConMerge results."""

    tile_results: list = field(default_factory=list)

    @property
    def original_columns(self) -> int:
        return sum(r.original_cols for r in self.tile_results)

    @property
    def condensed_columns(self) -> int:
        return sum(r.condensed_cols for r in self.tile_results)

    @property
    def physical_columns(self) -> int:
        return sum(r.physical_columns for r in self.tile_results)

    @property
    def condense_ratio(self) -> float:
        total = self.original_columns
        return self.condensed_columns / total if total else 0.0

    @property
    def remaining_column_ratio(self) -> float:
        total = self.original_columns
        return self.physical_columns / total if total else 0.0

    @property
    def cycles(self) -> int:
        return sum(r.cycles for r in self.tile_results)

    @property
    def num_blocks(self) -> int:
        return sum(len(r.blocks) for r in self.tile_results)

    @property
    def utilization(self) -> float:
        blocks = [b for r in self.tile_results for b in r.blocks]
        if not blocks:
            return 0.0
        cells = sum(b.num_elements for b in blocks)
        area = sum(b.rows * b.width for b in blocks)
        return cells / area


def conmerge_tiled(
    mask: Bitmask,
    tile_rows: int = 16,
    width: int = 16,
    sort: bool = True,
    class_capacity: int = 256,
) -> TiledConMergeResult:
    """Apply :func:`conmerge` to each ``tile_rows``-row slice of a mask."""
    result = TiledConMergeResult()
    for start in range(0, mask.rows, tile_rows):
        sub = Bitmask(mask.mask[start : start + tile_rows])
        result.tile_results.append(
            conmerge(sub, width=width, sort=sort, class_capacity=class_capacity)
        )
    return result
