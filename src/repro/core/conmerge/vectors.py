"""Control-signal datatypes for ConMerge execution on the SDUE.

Each DPU cell of a merged block needs to know (paper Fig. 11):

- which input row feeds it — its lane's *original line* or the lane's
  single *conflict line* (selected by ``i_sw``, configured per lane by the
  conflict vector);
- which of up to three broadcast weight columns it multiplies (selected by
  ``w_sw``, one per merge round / WMEM buffer).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CellAssignment:
    """One active DPU cell within a merged tile block.

    ``lane`` / ``col_slot`` locate the DPU; ``input_row`` is the original
    output-matrix row the cell computes (equal to ``lane`` unless the
    element was relocated during conflict resolution); ``origin_col`` is
    the original weight-column index; ``buffer_index`` selects the WMEM
    holding that weight column (0 = original block, 1 = first merge,
    2 = second merge).
    """

    lane: int
    col_slot: int
    input_row: int
    origin_col: int
    buffer_index: int

    def __post_init__(self) -> None:
        if self.buffer_index not in (0, 1, 2):
            raise ValueError("buffer_index must be 0, 1 or 2 (triple-buffered WMEM)")
        if min(self.lane, self.col_slot, self.input_row, self.origin_col) < 0:
            raise ValueError("indices must be non-negative")

    @property
    def uses_conflict_line(self) -> bool:
        """Whether the cell reads its input via the lane's conflict line."""
        return self.input_row != self.lane


@dataclass(frozen=True)
class ControlMap:
    """Per-cell switch settings derived from a :class:`CellAssignment`.

    ``i_sw`` selects the input line (0 = original, 1 = conflict) and
    ``w_sw`` selects the weight buffer (0-2); ``active`` is False for
    clock-gated idle cells.
    """

    i_sw: int
    w_sw: int
    active: bool = True

    def __post_init__(self) -> None:
        if self.i_sw not in (0, 1):
            raise ValueError("i_sw must be 0 (original) or 1 (conflict)")
        if self.w_sw not in (0, 1, 2):
            raise ValueError("w_sw must select one of 3 WMEM buffers")

    @classmethod
    def from_assignment(cls, cell: CellAssignment) -> "ControlMap":
        return cls(i_sw=1 if cell.uses_conflict_line else 0,
                   w_sw=cell.buffer_index)

    @classmethod
    def idle(cls) -> "ControlMap":
        return cls(i_sw=0, w_sw=0, active=False)
