"""Tile blocks: the unit the SDUE executes and ConMerge merges.

The hardware tiles the output matrix into blocks of ``width`` columns over
``rows`` input rows (the DPU-array shape, 16x16 in the real configuration,
3-wide in the paper's toy model of Figs. 8-9). A fresh block holds one
origin column per column slot with every element at its own lane; merging
may relocate elements and stack up to three origin columns per slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bitmask import Bitmask
from repro.core.conmerge.vectors import CellAssignment, ControlMap


@dataclass
class TileBlock:
    """A (possibly merged) tile of the output matrix.

    ``cells[lane][col_slot]`` is the :class:`CellAssignment` occupying that
    DPU, or ``None`` when idle. ``conflict_vector[lane]`` is the single
    foreign input row the lane's conflict line carries (None = unused).
    """

    rows: int
    width: int
    cells: list = field(default_factory=list)  # [rows][width] Optional[CellAssignment]
    conflict_vector: list = field(default_factory=list)  # [rows] Optional[int]
    num_origins: int = 1  # how many source blocks were merged in (<= 3)

    def __post_init__(self) -> None:
        if self.rows <= 0 or self.width <= 0:
            raise ValueError("TileBlock dimensions must be positive")
        if not self.cells:
            self.cells = [[None] * self.width for _ in range(self.rows)]
        if not self.conflict_vector:
            self.conflict_vector = [None] * self.rows

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_column(
        cls, occupancy: np.ndarray, origin_col: int, width: int, slot: int = 0
    ) -> "TileBlock":
        """Fresh single-column block (convenience for tests)."""
        block = cls(rows=len(occupancy), width=width)
        for lane in np.flatnonzero(np.asarray(occupancy, dtype=bool)):
            block.cells[int(lane)][slot] = CellAssignment(
                lane=int(lane),
                col_slot=slot,
                input_row=int(lane),
                origin_col=int(origin_col),
                buffer_index=0,
            )
        return block

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def entries(self) -> list:
        """All active cell assignments."""
        return [
            cell
            for row in self.cells
            for cell in row
            if cell is not None
        ]

    @property
    def num_elements(self) -> int:
        return len(self.entries())

    @property
    def utilization(self) -> float:
        """Active DPU fraction when this block executes."""
        return self.num_elements / (self.rows * self.width)

    def occupancy(self) -> np.ndarray:
        """Boolean (rows, width) grid of active cells."""
        grid = np.zeros((self.rows, self.width), dtype=bool)
        for lane in range(self.rows):
            for slot in range(self.width):
                grid[lane, slot] = self.cells[lane][slot] is not None
        return grid

    def origin_columns(self) -> set:
        """Distinct original weight columns present in the block."""
        return {cell.origin_col for cell in self.entries()}

    def control_maps(self) -> list:
        """Per-cell :class:`ControlMap` grid (rows x width)."""
        maps = []
        for lane in range(self.rows):
            row_maps = []
            for slot in range(self.width):
                cell = self.cells[lane][slot]
                if cell is None:
                    row_maps.append(ControlMap.idle())
                else:
                    row_maps.append(ControlMap.from_assignment(cell))
            maps.append(row_maps)
        return maps

    def copy(self) -> "TileBlock":
        return TileBlock(
            rows=self.rows,
            width=self.width,
            cells=[list(row) for row in self.cells],
            conflict_vector=list(self.conflict_vector),
            num_origins=self.num_origins,
        )

    def validate(self) -> None:
        """Check the hardware feasibility invariants; raise on violation."""
        if self.num_origins > 3:
            raise ValueError("a block cannot merge more than 3 origins")
        for lane in range(self.rows):
            foreign = {
                cell.input_row
                for cell in self.cells[lane]
                if cell is not None and cell.input_row != lane
            }
            if len(foreign) > 1:
                raise ValueError(
                    f"lane {lane} needs {len(foreign)} conflict rows; 1 allowed"
                )
            if foreign:
                (row,) = foreign
                if self.conflict_vector[lane] != row:
                    raise ValueError(
                        f"lane {lane} conflict vector {self.conflict_vector[lane]}"
                        f" does not carry required row {row}"
                    )


def partition_into_blocks(
    mask: Bitmask,
    column_indices: np.ndarray,
    width: int,
) -> list:
    """Split condensed columns into fresh width-``width`` tile blocks.

    ``column_indices[i]`` is the original weight column of condensed column
    ``i``; blocks take consecutive runs of ``width`` columns.
    """
    blocks = []
    n = len(column_indices)
    for start in range(0, n, width):
        cols = column_indices[start : start + width]
        block = TileBlock(rows=mask.rows, width=width)
        for slot, (local, col) in enumerate(
            zip(range(start, start + len(cols)), cols)
        ):
            occupancy = mask.column(local)
            for lane in np.flatnonzero(occupancy):
                block.cells[int(lane)][slot] = CellAssignment(
                    lane=int(lane),
                    col_slot=slot,
                    input_row=int(lane),
                    origin_col=int(col),
                    buffer_index=0,
                )
        blocks.append(block)
    return blocks
