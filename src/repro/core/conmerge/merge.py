"""Block merging with conflict-vector constrained relocation (Fig. 9, 14).

Two tile blocks merge column-slot by column-slot. Where both blocks hold an
element at the same (row, column-slot) position, the incoming element is
relocated to another row of the same column slot. Relocation is limited by
the hardware: each DPU lane has exactly one conflict input line, so every
relocated element landing on a lane must need the *same* foreign input row
(recorded in the conflict vector).

Conflicts are resolved in degree-of-freedom order, mirroring the CVG: the
column with the fewest spare slots per conflict is handled first, one
relocation per cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.conmerge.blocks import TileBlock
from repro.core.conmerge.vectors import CellAssignment


@dataclass
class MergeAttempt:
    """Outcome of one merge attempt, with its CVG cycle cost.

    ``cycles`` counts the setup (bitmask-map construction plus DOF
    evaluation, 2 cycles) and one cycle per *conflicted column* processed —
    the CVG resolves a column's conflicts in parallel (paper Fig. 14) —
    including work spent on attempts that ultimately fail.
    """

    success: bool
    merged: Optional[TileBlock]
    cycles: int
    conflicts_resolved: int


_SETUP_CYCLES = 2


def _cv_compatible(block: TileBlock, lane: int, input_row: int) -> bool:
    """Can a cell needing ``input_row`` live on ``lane``?"""
    if input_row == lane:
        return True
    cv = block.conflict_vector[lane]
    return cv is None or cv == input_row


def _place(
    block: TileBlock,
    lane: int,
    slot: int,
    entry: CellAssignment,
    buffer_offset: int,
) -> None:
    if block.cells[lane][slot] is not None:
        raise RuntimeError("placement target is occupied")
    block.cells[lane][slot] = CellAssignment(
        lane=lane,
        col_slot=slot,
        input_row=entry.input_row,
        origin_col=entry.origin_col,
        buffer_index=entry.buffer_index + buffer_offset,
    )
    if entry.input_row != lane:
        block.conflict_vector[lane] = entry.input_row


def try_merge(base: TileBlock, incoming: TileBlock) -> MergeAttempt:
    """Attempt to merge ``incoming`` into ``base`` (non-destructively).

    Returns a failed attempt (with its cycle cost) when the triple-buffer
    origin limit would be exceeded or a conflict cannot be relocated.
    """
    if base.rows != incoming.rows or base.width != incoming.width:
        raise ValueError("blocks must share tile dimensions")
    cycles = _SETUP_CYCLES  # bitmask-map construction + DOF evaluation
    total_origins = base.num_origins + incoming.num_origins
    if total_origins > 3:
        return MergeAttempt(success=False, merged=None, cycles=cycles,
                            conflicts_resolved=0)

    merged = base.copy()
    buffer_offset = base.num_origins

    # Direct placements first; collect per-column conflicts.
    conflicts: dict = {}  # col_slot -> list[CellAssignment]
    for entry in incoming.entries():
        lane, slot = entry.lane, entry.col_slot
        if merged.cells[lane][slot] is None and _cv_compatible(
            merged, lane, entry.input_row
        ):
            _place(merged, lane, slot, entry, buffer_offset)
        else:
            conflicts.setdefault(slot, []).append(entry)

    def dof(slot: int) -> int:
        """Writable empty slots minus pending conflicts (paper Fig. 14)."""
        empties = sum(
            1
            for lane in range(merged.rows)
            if merged.cells[lane][slot] is None
            and merged.conflict_vector[lane] is None
        )
        return empties - len(conflicts[slot])

    resolved = 0
    while conflicts:
        # The tightest column is processed first; all of its conflicts
        # resolve within the column's cycle (parallel slot moves).
        slot = min(conflicts, key=dof)
        pending = conflicts.pop(slot)
        cycles += 1
        for entry in pending:
            target = _find_slot(merged, slot, entry.input_row)
            if target is None:
                return MergeAttempt(success=False, merged=None,
                                    cycles=cycles,
                                    conflicts_resolved=resolved)
            _place(merged, target, slot, entry, buffer_offset)
            resolved += 1

    merged.num_origins = total_origins
    return MergeAttempt(success=True, merged=merged, cycles=cycles,
                        conflicts_resolved=resolved)


def _find_slot(block: TileBlock, slot: int, input_row: int) -> Optional[int]:
    """First lane whose cell at ``slot`` is empty and whose conflict line
    can carry ``input_row`` — preferring lanes already carrying it."""
    fallback = None
    for lane in range(block.rows):
        if block.cells[lane][slot] is not None:
            continue
        cv = block.conflict_vector[lane]
        if cv == input_row or lane == input_row:
            return lane
        if cv is None and fallback is None:
            fallback = lane
    return fallback


def greedy_merge(blocks: list, max_passes: int = 2) -> tuple:
    """Merge a block list pairwise, first-fit, up to two merges per block.

    Returns ``(merged_blocks, total_cycles, attempts, successes)``. This is
    the unsorted baseline of Fig. 12; :func:`repro.core.conmerge.cvg.conmerge`
    layers the SortBuffer ordering on top.
    """
    pending = [b.copy() for b in blocks]
    out = []
    cycles = 0
    attempts = 0
    successes = 0
    while pending:
        base = pending.pop(0)
        merges_left = 3 - base.num_origins
        for _ in range(min(max_passes, merges_left)):
            hit = None
            for idx, candidate in enumerate(pending):
                attempt = try_merge(base, candidate)
                cycles += attempt.cycles
                attempts += 1
                if attempt.success:
                    hit = (idx, attempt.merged)
                    successes += 1
                    break
            if hit is None:
                break
            idx, base = hit
            pending.pop(idx)
        out.append(base)
    return out, cycles, attempts, successes
