"""CAU SortBuffer: coarse sparsity-level sorting of output columns.

During dense iterations the CAU receives, per output column, the original
column index and a row-occupancy bitmask. A sparsity-level classifier
buckets each column into one of five classes (paper Fig. 13); full classes
overflow to the next sparser class and finally to the extra class. All-zero
bitmasks are never stored — that *is* the condensing step.

The coarse sort raises merge success rates: merging a dense block with a
sparse block rarely conflicts, cutting CVG cycles by 29-73% (Fig. 12).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.bitmask import Bitmask


class SparsityClass(enum.Enum):
    """Coarse sparsity levels, densest first."""

    HIGH_DENSE = 0
    DENSE = 1
    SPARSE = 2
    HIGH_SPARSE = 3
    EXTRA = 4


# Overflow target per class: "the next sparse class", then EXTRA.
_OVERFLOW = {
    SparsityClass.HIGH_DENSE: SparsityClass.DENSE,
    SparsityClass.DENSE: SparsityClass.SPARSE,
    SparsityClass.SPARSE: SparsityClass.HIGH_SPARSE,
    SparsityClass.HIGH_SPARSE: SparsityClass.EXTRA,
}


def classify(popcount: int, rows: int) -> SparsityClass:
    """Sparsity level of a column with ``popcount`` non-sparse rows."""
    if not 0 <= popcount <= rows:
        raise ValueError("popcount out of range")
    ratio = popcount / rows
    if ratio > 0.75:
        return SparsityClass.HIGH_DENSE
    if ratio > 0.50:
        return SparsityClass.DENSE
    if ratio > 0.25:
        return SparsityClass.SPARSE
    return SparsityClass.HIGH_SPARSE


@dataclass
class ColumnEntry:
    """A SortBuffer record: original column index plus occupancy bitmask."""

    origin_col: int
    occupancy: np.ndarray  # bool (rows,)

    @property
    def popcount(self) -> int:
        return int(self.occupancy.sum())


class SortBuffer:
    """Banked class buffer with overflow, as in the CAU (Fig. 13)."""

    def __init__(self, rows: int, class_capacity: int = 256) -> None:
        if rows <= 0:
            raise ValueError("rows must be positive")
        if class_capacity <= 0:
            raise ValueError("class_capacity must be positive")
        self.rows = rows
        self.class_capacity = class_capacity
        self._classes: dict = {cls: [] for cls in SparsityClass}
        self.condensed_columns = 0  # all-zero columns dropped on insert

    def insert(self, origin_col: int, occupancy: np.ndarray) -> bool:
        """Store one column; returns False when condensed away (all zero)."""
        occupancy = np.asarray(occupancy, dtype=bool)
        if occupancy.shape != (self.rows,):
            raise ValueError(f"occupancy must have shape ({self.rows},)")
        entry = ColumnEntry(origin_col=origin_col, occupancy=occupancy)
        if entry.popcount == 0:
            self.condensed_columns += 1
            return False
        cls = classify(entry.popcount, self.rows)
        while cls is not SparsityClass.EXTRA and self._is_full(cls):
            cls = _OVERFLOW[cls]
        self._classes[cls].append(entry)
        return True

    def insert_mask(self, mask: Bitmask) -> int:
        """Insert every column of a bitmask; returns stored-column count."""
        stored = 0
        for col in range(mask.cols):
            if self.insert(col, mask.column(col)):
                stored += 1
        return stored

    def _is_full(self, cls: SparsityClass) -> bool:
        return len(self._classes[cls]) >= self.class_capacity

    def __len__(self) -> int:
        return sum(len(entries) for entries in self._classes.values())

    def class_counts(self) -> dict:
        return {cls: len(entries) for cls, entries in self._classes.items()}

    def drain_sorted(self) -> list:
        """All entries ordered densest-to-sparsest (class-coarse order).

        Within a class the arrival order is preserved — the hardware sorts
        "not completely but in a coarse manner, which is sufficient"
        (paper Section IV-C).
        """
        ordered = []
        for cls in (
            SparsityClass.HIGH_DENSE,
            SparsityClass.DENSE,
            SparsityClass.EXTRA,
            SparsityClass.SPARSE,
            SparsityClass.HIGH_SPARSE,
        ):
            ordered.extend(self._classes[cls])
        self._classes = {cls: [] for cls in SparsityClass}
        return ordered
