"""Plan-time ConMerge tile layouts (compiled-executor half of III-B).

The interpreted pipeline re-derives ConMerge compaction from raw bitmasks
every time the hardware model asks; the compiled executor instead freezes
one :class:`PhaseTileLayout` per (phase, block) when the phase's bitmask is
produced at the dense iteration. The layout carries both views the rest of
the stack consumes:

- the per-tile **gather index sets** (flat row-major positions split by
  SDUE tile) that drive step-time gather/scatter, and
- the **ConMerge compaction summary** (condensed / physical columns,
  merged blocks, utilization) the CLI and hardware model report.

Nothing here runs per sparse step — that is the point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bitmask import Bitmask
from repro.core.conmerge.cvg import conmerge_tiled
from repro.core.sparsity import partition_indices_by_tiles


@dataclass
class PhaseTileLayout:
    """Frozen tile-level layout of one phase bitmask."""

    rows: int
    cols: int
    tile_rows: int
    width: int
    nnz: int
    sparsity: float
    tile_indices: dict = field(default_factory=dict)
    condensed_columns: int = 0
    physical_columns: int = 0
    original_columns: int = 0
    num_blocks: int = 0
    utilization: float = 0.0
    merge_cycles: int = 0

    @property
    def num_tiles(self) -> int:
        """Tiles with at least one element to compute."""
        return len(self.tile_indices)

    @property
    def remaining_column_ratio(self) -> float:
        if self.original_columns == 0:
            return 0.0
        return self.physical_columns / self.original_columns

    def summary(self) -> dict:
        """Flat dict for CLI / report printing."""
        return {
            "rows": self.rows,
            "cols": self.cols,
            "nnz": self.nnz,
            "sparsity": self.sparsity,
            "occupied_tiles": self.num_tiles,
            "condensed_columns": self.condensed_columns,
            "physical_columns": self.physical_columns,
            "original_columns": self.original_columns,
            "merged_blocks": self.num_blocks,
            "utilization": self.utilization,
            "merge_cycles": self.merge_cycles,
        }


def compile_phase_layout(
    mask: Bitmask,
    tile_rows: int = 16,
    width: int = 16,
    sort: bool = True,
) -> PhaseTileLayout:
    """Freeze one phase bitmask into its SDUE tile layout.

    Runs the full condense + merge pass once and splits the bitmask's
    gather index set per ``(tile_rows, width)`` tile; both are then
    replayed unchanged for every sparse iteration of the phase.
    """
    tiled = conmerge_tiled(mask, tile_rows=tile_rows, width=width, sort=sort)
    tiles = partition_indices_by_tiles(
        mask.to_gather_indices(), (mask.rows, mask.cols), tile_rows, width
    )
    return PhaseTileLayout(
        rows=mask.rows,
        cols=mask.cols,
        tile_rows=tile_rows,
        width=width,
        nnz=mask.nnz,
        sparsity=mask.sparsity,
        tile_indices=tiles,
        condensed_columns=tiled.condensed_columns,
        physical_columns=tiled.physical_columns,
        original_columns=tiled.original_columns,
        num_blocks=tiled.num_blocks,
        utilization=tiled.utilization,
        merge_cycles=tiled.cycles,
    )
