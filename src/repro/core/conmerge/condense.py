"""Condensing: drop output-matrix columns that are entirely sparse.

When every element of a column is sparse, the column's weight vector is
never needed: the column is removed from the computation and from weight
fetching (paper Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bitmask import Bitmask


@dataclass
class CondenseResult:
    """Outcome of condensing one output bitmask."""

    original_cols: int
    kept_columns: np.ndarray  # original column indices that survive
    condensed: Bitmask  # mask restricted to the kept columns

    @property
    def removed_cols(self) -> int:
        return self.original_cols - len(self.kept_columns)

    @property
    def remaining_ratio(self) -> float:
        """Fraction of columns remaining after condensing (Fig. 8 metric)."""
        if self.original_cols == 0:
            return 0.0
        return len(self.kept_columns) / self.original_cols


def condense(mask: Bitmask) -> CondenseResult:
    """Remove all-sparse columns from ``mask``."""
    kept = mask.nonzero_columns()
    condensed = Bitmask(mask.mask[:, kept]) if kept.size else Bitmask(
        np.zeros((mask.rows, 0), dtype=bool)
    )
    return CondenseResult(
        original_cols=mask.cols, kept_columns=kept, condensed=condensed
    )
