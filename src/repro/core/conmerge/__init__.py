"""ConMerge: condensing + merging of sparse output matrices (paper III-B).

Output sparsity produced by FFN-Reuse and eager prediction is unstructured,
so a GPU cannot exploit it. ConMerge compacts the large sparse output matrix
into few dense tile blocks the SDUE can execute at high utilization:

1. **Condensing** (:mod:`condense`) removes columns whose elements are all
   sparse — their weights are never even fetched (Fig. 8).
2. **Merging** (:mod:`merge`) pairs tiled blocks column-by-column, moving
   conflicting elements to other rows within the same column under the
   conflict-vector constraint (one foreign input row per DPU lane, Fig. 9).
3. **Sorting** (:mod:`sortbuffer`) classifies columns by sparsity level so
   dense blocks merge with sparse blocks first, cutting merge cycles by
   29-73% (Figs. 12, 13).
4. The **CVG** (:mod:`cvg`) resolves conflicts in degree-of-freedom order
   and emits the conflict vectors and control maps the SDUE consumes
   (Fig. 14).
"""

from repro.core.conmerge.blocks import TileBlock, partition_into_blocks
from repro.core.conmerge.condense import CondenseResult, condense
from repro.core.conmerge.cvg import ConMergeResult, conmerge, conmerge_tiled
from repro.core.conmerge.layout import PhaseTileLayout, compile_phase_layout
from repro.core.conmerge.merge import MergeAttempt, try_merge
from repro.core.conmerge.sortbuffer import SortBuffer, SparsityClass
from repro.core.conmerge.vectors import CellAssignment, ControlMap

__all__ = [
    "CellAssignment",
    "ConMergeResult",
    "CondenseResult",
    "ControlMap",
    "MergeAttempt",
    "PhaseTileLayout",
    "SortBuffer",
    "SparsityClass",
    "TileBlock",
    "compile_phase_layout",
    "condense",
    "conmerge",
    "conmerge_tiled",
    "partition_into_blocks",
    "try_merge",
]
