"""Bitmask over an output matrix: which elements must be (re)computed.

The convention throughout follows the paper's Fig. 6: bit ``1`` marks a
non-sparse element (compute it), bit ``0`` marks a sparse element (skip /
reuse). Rows index the input (token) axis, columns index the weight-column
(output-feature) axis — the orientation ConMerge condenses and merges over.
"""

from __future__ import annotations

import numpy as np


class Bitmask:
    """Boolean mask over a ``(rows, cols)`` output matrix."""

    def __init__(self, mask: np.ndarray) -> None:
        mask = np.asarray(mask)
        if mask.ndim != 2:
            raise ValueError("Bitmask must be 2-D (rows x cols)")
        self.mask = mask.astype(bool)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_threshold(cls, values: np.ndarray, threshold: float) -> "Bitmask":
        """Mark elements whose magnitude exceeds ``threshold`` as non-sparse.

        This is the dense-iteration bitmask generation of FFN-Reuse: values
        above the threshold are "important and need to be recomputed at
        every iteration".
        """
        return cls(np.abs(np.asarray(values, dtype=np.float64)) > threshold)

    @classmethod
    def from_quantile(cls, values: np.ndarray, target_sparsity: float) -> "Bitmask":
        """Pick the threshold as the ``target_sparsity`` magnitude quantile.

        Mirrors the paper's empirical threshold selection: the threshold is
        whatever value makes the desired fraction of elements sparse.
        """
        if not 0.0 <= target_sparsity < 1.0:
            raise ValueError("target_sparsity must be in [0, 1)")
        magnitudes = np.abs(np.asarray(values, dtype=np.float64))
        threshold = float(np.quantile(magnitudes, target_sparsity))
        return cls(magnitudes > threshold)

    @classmethod
    def dense(cls, rows: int, cols: int) -> "Bitmask":
        return cls(np.ones((rows, cols), dtype=bool))

    @classmethod
    def from_gather_indices(
        cls, indices: np.ndarray, rows: int, cols: int
    ) -> "Bitmask":
        """Rebuild a mask from flat row-major gather indices.

        Inverse of :meth:`to_gather_indices`: for any mask,
        ``Bitmask.from_gather_indices(m.to_gather_indices(), m.rows,
        m.cols) == m``.
        """
        if rows <= 0 or cols <= 0:
            raise ValueError("mask dimensions must be positive")
        indices = np.asarray(indices, dtype=np.int64).ravel()
        if indices.size and (
            indices.min() < 0 or indices.max() >= rows * cols
        ):
            raise ValueError(
                f"gather indices out of range for a {rows}x{cols} mask"
            )
        mask = np.zeros(rows * cols, dtype=bool)
        mask[indices] = True
        return cls(mask.reshape(rows, cols))

    @classmethod
    def random(
        cls, rows: int, cols: int, sparsity: float, rng: np.random.Generator
    ) -> "Bitmask":
        """Random mask with the given expected sparsity (for benches/tests)."""
        if not 0.0 <= sparsity <= 1.0:
            raise ValueError("sparsity must be in [0, 1]")
        return cls(rng.random((rows, cols)) >= sparsity)

    # ------------------------------------------------------------------
    # shape and statistics
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        return self.mask.shape[0]

    @property
    def cols(self) -> int:
        return self.mask.shape[1]

    @property
    def nnz(self) -> int:
        """Number of non-sparse (compute-required) elements."""
        return int(self.mask.sum())

    @property
    def sparsity(self) -> float:
        """Fraction of sparse elements."""
        return 1.0 - self.nnz / self.mask.size

    def column_popcounts(self) -> np.ndarray:
        """Non-sparse element count per column (CAU classifier input)."""
        return self.mask.sum(axis=0).astype(int)

    def nonzero_columns(self) -> np.ndarray:
        """Indices of columns with at least one non-sparse element."""
        return np.flatnonzero(self.mask.any(axis=0))

    def all_zero_columns(self) -> np.ndarray:
        """Indices of fully-sparse columns (removed by condensing)."""
        return np.flatnonzero(~self.mask.any(axis=0))

    def column(self, index: int) -> np.ndarray:
        """The boolean occupancy of one column."""
        return self.mask[:, index]

    def to_gather_indices(self) -> np.ndarray:
        """Flat row-major indices of the non-sparse elements.

        This is the bitmask→gather conversion of the compiled executor:
        the indices drive ``ravel()``-level gather/scatter of exactly the
        elements the bitmask marks for recomputation, in ascending
        (row-major) order. Round-trips through
        :meth:`from_gather_indices`.
        """
        return np.flatnonzero(self.mask.ravel())

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def __and__(self, other: "Bitmask") -> "Bitmask":
        return Bitmask(self.mask & other.mask)

    def __or__(self, other: "Bitmask") -> "Bitmask":
        return Bitmask(self.mask | other.mask)

    def __invert__(self) -> "Bitmask":
        return Bitmask(~self.mask)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmask):
            return NotImplemented
        return self.mask.shape == other.mask.shape and bool(
            np.all(self.mask == other.mask)
        )

    def __hash__(self) -> int:  # pragma: no cover - masks are not dict keys
        return hash((self.mask.shape, self.mask.tobytes()))

    def __repr__(self) -> str:
        return (
            f"Bitmask(rows={self.rows}, cols={self.cols}, "
            f"sparsity={self.sparsity:.3f})"
        )

    def pack_words(self) -> np.ndarray:
        """Pack each column into a row-major integer word (CAU storage).

        Column ``c`` becomes ``sum(mask[r, c] << r)``; matches the 16-bit
        bitmask-per-column format the CAU SortBuffer stores (Fig. 13) when
        ``rows <= 16``.
        """
        weights = (1 << np.arange(self.rows, dtype=np.int64))[:, None]
        return (self.mask.astype(np.int64) * weights).sum(axis=0)
