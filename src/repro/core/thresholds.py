"""Empirical threshold determination for FFN-Reuse.

The paper (Section III-A): "Determining these thresholds, which vary across
iterations and transformer blocks, does not require additional training. We
can determine these local threshold values through empirical experiments
and apply them during runtime."

Two usage modes are provided:

- **online quantile** — at each dense iteration the threshold is the
  magnitude quantile hitting the target sparsity (the default inside
  :class:`repro.core.ffn_reuse.FFNReuse`);
- **offline calibration** — :class:`ThresholdCalibrator` runs one vanilla
  generation, records the per-(dense-iteration, block) quantile thresholds,
  and replays them as fixed constants at runtime, exactly matching the
  paper's deployment story.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class ThresholdTable:
    """Fixed thresholds keyed by (dense-iteration index, block index)."""

    target_sparsity: float
    values: dict = field(default_factory=dict)

    def set(self, dense_index: int, block: int, threshold: float) -> None:
        self.values[(dense_index, block)] = float(threshold)

    def get(self, dense_index: int, block: int) -> Optional[float]:
        """Exact entry, else the nearest earlier dense iteration's entry."""
        key = (dense_index, block)
        if key in self.values:
            return self.values[key]
        candidates = [
            (d, b) for (d, b) in self.values if b == block and d <= dense_index
        ]
        if not candidates:
            return None
        return self.values[max(candidates)]

    def __len__(self) -> int:
        return len(self.values)


def quantile_threshold(values: np.ndarray, target_sparsity: float) -> float:
    """Magnitude quantile such that ``target_sparsity`` of elements fall below."""
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError("target_sparsity must be in [0, 1)")
    return float(np.quantile(np.abs(np.asarray(values, dtype=np.float64)),
                             target_sparsity))


class ThresholdCalibrator:
    """Offline calibration pass producing a :class:`ThresholdTable`.

    Runs the model's vanilla pipeline on calibration prompts, observes the
    non-linear-layer outputs at each would-be dense iteration, and records
    quantile thresholds.
    """

    def __init__(self, target_sparsity: float, dense_period: int) -> None:
        if dense_period < 1:
            raise ValueError("dense_period must be >= 1")
        self.target_sparsity = target_sparsity
        self.dense_period = dense_period

    def calibrate(self, model, seed: int = 0, prompt: Optional[str] = None) -> ThresholdTable:
        """Build the table from one vanilla generation of ``model``.

        ``model`` is a :class:`repro.models.zoo.BenchmarkModel`.
        """
        pipeline = model.make_pipeline()
        result = pipeline.generate(seed=seed, prompt=prompt, collect_traces=True)
        table = ThresholdTable(target_sparsity=self.target_sparsity)
        for iteration, traces in enumerate(result.block_traces):
            if iteration % self.dense_period != 0:
                continue
            dense_index = iteration // self.dense_period
            for block, trace in enumerate(traces):
                threshold = quantile_threshold(
                    trace.ffn.hidden, self.target_sparsity
                )
                table.set(dense_index, block, threshold)
        return table
