"""Sparsity and operation-count statistics for an EXION run.

These aggregates drive both the accuracy tables and the hardware
performance model: the simulator consumes the measured output-sparsity
rates to size its tile workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpCounter:
    """Dense-equivalent vs actually-computed MACs for one op category."""

    dense: int = 0
    computed: int = 0

    def add(self, dense: int, computed: int) -> None:
        if computed > dense:
            raise ValueError("computed ops cannot exceed dense-equivalent ops")
        self.dense += int(dense)
        self.computed += int(computed)

    @property
    def reduction(self) -> float:
        """Fraction of dense-equivalent ops skipped."""
        if self.dense == 0:
            return 0.0
        return 1.0 - self.computed / self.dense


@dataclass
class RunStats:
    """Aggregated statistics over one EXION generation."""

    # FFN-Reuse.
    ffn_layer1: OpCounter = field(default_factory=OpCounter)
    ffn_layer2: OpCounter = field(default_factory=OpCounter)
    ffn_sparsities: list = field(default_factory=list)  # per sparse-iter/block
    dense_iterations: int = 0
    sparse_iterations: int = 0

    # Eager prediction.
    attention_scores: OpCounter = field(default_factory=OpCounter)
    q_projection: OpCounter = field(default_factory=OpCounter)
    kv_projection: OpCounter = field(default_factory=OpCounter)
    attention_sparsities: list = field(default_factory=list)  # per layer call
    prediction_overhead_macs: int = 0

    # ConMerge inputs: bitmasks collected during the run (optional).
    ffn_bitmasks: list = field(default_factory=list)
    attention_keepmasks: list = field(default_factory=list)

    @property
    def ffn_output_sparsity(self) -> float:
        """Mean 1st-FFN-layer output sparsity across sparse iterations."""
        if not self.ffn_sparsities:
            return 0.0
        return float(sum(self.ffn_sparsities) / len(self.ffn_sparsities))

    @property
    def attention_output_sparsity(self) -> float:
        """Mean attention-score output sparsity across layer calls."""
        if not self.attention_sparsities:
            return 0.0
        return float(sum(self.attention_sparsities) / len(self.attention_sparsities))

    @property
    def ffn_ops_reduction(self) -> float:
        """Fraction of FFN MACs skipped over the whole run (paper Fig. 6)."""
        total = OpCounter()
        total.add(self.ffn_layer1.dense, self.ffn_layer1.computed)
        total.add(self.ffn_layer2.dense, self.ffn_layer2.computed)
        return total.reduction

    @property
    def q_projection_skip_rate(self) -> float:
        return self.q_projection.reduction

    @property
    def kv_projection_skip_rate(self) -> float:
        return self.kv_projection.reduction

    def merge_from(self, other: "RunStats") -> None:
        """Accumulate another run's statistics into this one.

        Iterates the dataclass fields so a newly added counter or
        observation list can never be silently dropped from aggregate
        (micro-batch / server) reports.
        """
        from dataclasses import fields

        for spec in fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, OpCounter):
                mine.add(theirs.dense, theirs.computed)
            elif isinstance(mine, list):
                mine.extend(theirs)
            elif isinstance(mine, int):
                setattr(self, spec.name, mine + theirs)
            else:  # pragma: no cover - new field kinds must pick a rule
                raise TypeError(
                    f"don't know how to merge RunStats field {spec.name!r}"
                )

    @classmethod
    def merged(cls, stats_list) -> "RunStats":
        """Aggregate per-request stats into one fleet-wide view.

        Used by the serving layer to report micro-batch and server totals:
        op counters add up, sparsity observations concatenate, so the
        derived rates are averaged over every request served.
        """
        total = cls()
        for stats in stats_list:
            total.merge_from(stats)
        return total

    def summary(self) -> dict:
        """Flat dict for report printing."""
        return {
            "ffn_output_sparsity": self.ffn_output_sparsity,
            "ffn_ops_reduction": self.ffn_ops_reduction,
            "attention_output_sparsity": self.attention_output_sparsity,
            "q_projection_skip_rate": self.q_projection_skip_rate,
            "kv_projection_skip_rate": self.kv_projection_skip_rate,
            "dense_iterations": self.dense_iterations,
            "sparse_iterations": self.sparse_iterations,
        }
