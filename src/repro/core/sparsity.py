"""Sparsity and operation-count statistics for an EXION run.

These aggregates drive both the accuracy tables and the hardware
performance model: the simulator consumes the measured output-sparsity
rates to size its tile workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def mask_to_indices(mask: np.ndarray) -> np.ndarray:
    """Flat row-major indices of the ``True`` elements of a boolean mask.

    The index-set form of an output bitmask: ascending ``int64`` positions
    into ``mask.ravel()``. The compiled executor gathers/scatters through
    these instead of re-testing the mask per step.
    """
    mask = np.asarray(mask)
    return np.flatnonzero(mask.astype(bool).ravel())


def indices_to_mask(indices: np.ndarray, shape: tuple) -> np.ndarray:
    """Inverse of :func:`mask_to_indices` for the given mask ``shape``."""
    size = int(np.prod(shape, dtype=np.int64)) if shape else 0
    if size <= 0:
        raise ValueError("mask shape must have positive size")
    indices = np.asarray(indices, dtype=np.int64).ravel()
    if indices.size and (indices.min() < 0 or indices.max() >= size):
        raise ValueError(f"indices out of range for shape {tuple(shape)}")
    mask = np.zeros(size, dtype=bool)
    mask[indices] = True
    return mask.reshape(shape)


def partition_indices_by_tiles(
    indices: np.ndarray,
    shape: tuple,
    tile_rows: int,
    tile_cols: int,
) -> dict:
    """Split a flat index set of a 2-D mask into per-tile index sets.

    Tiles are the ``(tile_rows, tile_cols)`` blocks the SDUE executes;
    ragged edge tiles (when the shape does not divide evenly) keep their
    reduced extent. A tile's flat indices are *non-contiguous* in
    row-major order — each covers ``tile_rows`` disjoint row segments —
    which is exactly why the conversion is precomputed at plan time
    instead of re-derived per step.

    Returns ``{(tile_row, tile_col): ascending int64 flat indices}`` with
    every input index appearing in exactly one tile (the union
    round-trips through :func:`indices_to_mask`).
    """
    if len(shape) != 2:
        raise ValueError("tile partitioning needs a 2-D mask shape")
    rows, cols = int(shape[0]), int(shape[1])
    if rows <= 0 or cols <= 0:
        raise ValueError("mask shape must have positive size")
    if tile_rows <= 0 or tile_cols <= 0:
        raise ValueError("tile dimensions must be positive")
    indices = np.asarray(indices, dtype=np.int64).ravel()
    if indices.size and (indices.min() < 0 or indices.max() >= rows * cols):
        raise ValueError(f"indices out of range for shape {(rows, cols)}")
    r = indices // cols
    c = indices % cols
    tiles: dict = {}
    keys = np.stack([r // tile_rows, c // tile_cols], axis=-1) if indices.size \
        else np.zeros((0, 2), dtype=np.int64)
    for key in np.unique(keys, axis=0) if indices.size else ():
        sel = (keys[:, 0] == key[0]) & (keys[:, 1] == key[1])
        tiles[(int(key[0]), int(key[1]))] = indices[sel]
    return tiles


@dataclass
class OpCounter:
    """Dense-equivalent vs actually-computed MACs for one op category."""

    dense: int = 0
    computed: int = 0

    def add(self, dense: int, computed: int) -> None:
        if computed > dense:
            raise ValueError("computed ops cannot exceed dense-equivalent ops")
        self.dense += int(dense)
        self.computed += int(computed)

    @property
    def reduction(self) -> float:
        """Fraction of dense-equivalent ops skipped."""
        if self.dense == 0:
            return 0.0
        return 1.0 - self.computed / self.dense


@dataclass
class RunStats:
    """Aggregated statistics over one EXION generation."""

    # FFN-Reuse.
    ffn_layer1: OpCounter = field(default_factory=OpCounter)
    ffn_layer2: OpCounter = field(default_factory=OpCounter)
    ffn_sparsities: list = field(default_factory=list)  # per sparse-iter/block
    dense_iterations: int = 0
    sparse_iterations: int = 0

    # Eager prediction.
    attention_scores: OpCounter = field(default_factory=OpCounter)
    q_projection: OpCounter = field(default_factory=OpCounter)
    kv_projection: OpCounter = field(default_factory=OpCounter)
    attention_sparsities: list = field(default_factory=list)  # per layer call
    prediction_overhead_macs: int = 0

    # ConMerge inputs: bitmasks collected during the run (optional).
    ffn_bitmasks: list = field(default_factory=list)
    attention_keepmasks: list = field(default_factory=list)

    @property
    def ffn_output_sparsity(self) -> float:
        """Mean 1st-FFN-layer output sparsity across sparse iterations."""
        if not self.ffn_sparsities:
            return 0.0
        return float(sum(self.ffn_sparsities) / len(self.ffn_sparsities))

    @property
    def attention_output_sparsity(self) -> float:
        """Mean attention-score output sparsity across layer calls."""
        if not self.attention_sparsities:
            return 0.0
        return float(sum(self.attention_sparsities) / len(self.attention_sparsities))

    @property
    def ffn_ops_reduction(self) -> float:
        """Fraction of FFN MACs skipped over the whole run (paper Fig. 6)."""
        total = OpCounter()
        total.add(self.ffn_layer1.dense, self.ffn_layer1.computed)
        total.add(self.ffn_layer2.dense, self.ffn_layer2.computed)
        return total.reduction

    @property
    def q_projection_skip_rate(self) -> float:
        return self.q_projection.reduction

    @property
    def kv_projection_skip_rate(self) -> float:
        return self.kv_projection.reduction

    def merge_from(self, other: "RunStats") -> None:
        """Accumulate another run's statistics into this one.

        Iterates the dataclass fields so a newly added counter or
        observation list can never be silently dropped from aggregate
        (micro-batch / server) reports.
        """
        from dataclasses import fields

        for spec in fields(self):
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, OpCounter):
                mine.add(theirs.dense, theirs.computed)
            elif isinstance(mine, list):
                mine.extend(theirs)
            elif isinstance(mine, int):
                setattr(self, spec.name, mine + theirs)
            else:  # pragma: no cover - new field kinds must pick a rule
                raise TypeError(
                    f"don't know how to merge RunStats field {spec.name!r}"
                )

    @classmethod
    def merged(cls, stats_list) -> "RunStats":
        """Aggregate per-request stats into one fleet-wide view.

        Used by the serving layer to report micro-batch and server totals:
        op counters add up, sparsity observations concatenate, so the
        derived rates are averaged over every request served.
        """
        total = cls()
        for stats in stats_list:
            total.merge_from(stats)
        return total

    def summary(self) -> dict:
        """Flat dict for report printing."""
        return {
            "ffn_output_sparsity": self.ffn_output_sparsity,
            "ffn_ops_reduction": self.ffn_ops_reduction,
            "attention_output_sparsity": self.attention_output_sparsity,
            "q_projection_skip_rate": self.q_projection_skip_rate,
            "kv_projection_skip_rate": self.kv_projection_skip_rate,
            "dense_iterations": self.dense_iterations,
            "sparse_iterations": self.sparse_iterations,
        }
