"""End-to-end EXION inference over a benchmark model.

Binds the FFN-Reuse manager and eager predictor into the diffusion
pipeline's executor hooks and aggregates run statistics. The four ablation
configurations of the evaluation (Base / EP / FFNR / All) are expressed by
the two enable flags on :class:`repro.core.config.ExionConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.config import ExionConfig
from repro.core.eager_prediction import EagerPredictor
from repro.core.ffn_reuse import FFNReuse
from repro.core.sparsity import RunStats
from repro.core.thresholds import ThresholdTable
from repro.models.pipeline import DiffusionResult
from repro.models.transformer import Executors
from repro.models.zoo import BenchmarkModel


@dataclass
class GenerationResult:
    """Sample plus the sparsity/op statistics of the run."""

    sample: np.ndarray
    stats: RunStats
    diffusion: DiffusionResult


class ExionPipeline:
    """Runs a benchmark model with EXION's software optimizations.

    ``compiled=True`` routes generation through the plan-compiled executor
    (:class:`repro.exec.CompiledExecutor`): the phase schedule, log-domain
    weight operands and timestep tables are precomputed once and each
    iteration replays pure gather/scatter kernels. Results are
    bit-identical to the interpreted path, which remains the reference
    oracle (and the only path that can collect per-iteration traces).

    Example::

        model = build_model("dit")
        pipeline = ExionPipeline(model, ExionConfig.for_model("dit"))
        result = pipeline.generate(seed=1, class_label=207)
    """

    def __init__(
        self,
        model: BenchmarkModel,
        config: ExionConfig,
        threshold_table: Optional[ThresholdTable] = None,
        activation_bits: Optional[int] = None,
        collect_masks: bool = False,
        compiled: bool = False,
    ) -> None:
        self.model = model
        self.config = config
        self.threshold_table = threshold_table
        self.activation_bits = activation_bits
        self.collect_masks = collect_masks
        self.compiled = compiled
        self._compiled_executor = None

    def _executor(self):
        """The plan-compiled executor, built once per pipeline."""
        if self._compiled_executor is None:
            from repro.exec import CompiledExecutor

            self._compiled_executor = CompiledExecutor(
                self.model,
                self.config,
                threshold_table=self.threshold_table,
                activation_bits=self.activation_bits,
                collect_masks=self.collect_masks,
            )
        return self._compiled_executor

    def generate(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
        collect_traces: bool = False,
    ) -> GenerationResult:
        """Generate one sample with the configured optimizations."""
        if self.compiled and not collect_traces:
            # Trace collection is an analysis feature of the interpreted
            # path; asking for it falls back to the oracle.
            return self._executor().generate(
                seed=seed, prompt=prompt, class_label=class_label
            )
        stats = RunStats()
        pipeline = self.model.make_pipeline()

        ffn_reuse: Optional[FFNReuse] = None
        if self.config.enable_ffn_reuse:
            ffn_reuse = FFNReuse(
                self.config,
                num_blocks=self.model.network.num_transformer_blocks,
                stats=stats,
                threshold_table=self.threshold_table,
                collect_bitmasks=self.collect_masks,
            )
        predictor: Optional[EagerPredictor] = None
        if self.config.enable_eager_prediction:
            predictor = EagerPredictor(
                self.config, stats=stats, collect_keepmasks=self.collect_masks
            )

        provider = self._make_provider(ffn_reuse, predictor)
        hook = None
        if ffn_reuse is not None:
            hook = lambda iteration, t: ffn_reuse.begin_iteration(iteration)  # noqa: E731

        diffusion = pipeline.generate(
            seed=seed,
            prompt=prompt,
            class_label=class_label,
            executor_provider=provider,
            iteration_start_hook=hook,
            collect_traces=collect_traces,
        )
        return GenerationResult(sample=diffusion.sample, stats=stats,
                                diffusion=diffusion)

    def generate_batch(
        self,
        seeds,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
        vanilla: bool = False,
        batched: bool = False,
    ) -> tuple:
        """Generate one sample per seed; returns ``(samples, results)``.

        ``samples`` is a stacked ``(len(seeds), tokens, dim)`` array for
        direct use with the distribution metrics in
        :mod:`repro.workloads.metrics`.

        ``batched=True`` routes the seeds through the vectorized
        :class:`repro.serve.batched.BatchedPipeline` (one shared denoising
        loop for the whole batch) instead of a Python-level loop; the
        per-seed samples and statistics are identical either way.
        """
        seeds = list(seeds)
        if not seeds:
            raise ValueError("need at least one seed")
        if batched:
            from repro.serve.batched import BatchedPipeline

            if vanilla:
                # Vanilla disables every optimization, like generate_vanilla().
                delegate = BatchedPipeline(self.model, self.config.ablation("base"),
                                           compiled=self.compiled)
            else:
                delegate = BatchedPipeline(
                    self.model,
                    self.config,
                    threshold_table=self.threshold_table,
                    activation_bits=self.activation_bits,
                    collect_masks=self.collect_masks,
                    compiled=self.compiled,
                )
            return delegate.generate_batch(
                seeds, prompt=prompt, class_label=class_label
            )
        results = []
        for seed in seeds:
            if vanilla:
                results.append(
                    self.generate_vanilla(seed=seed, prompt=prompt,
                                          class_label=class_label)
                )
            else:
                results.append(
                    self.generate(seed=seed, prompt=prompt,
                                  class_label=class_label)
                )
        samples = np.stack([r.sample for r in results])
        return samples, results

    def generate_vanilla(
        self,
        seed: int = 0,
        prompt: Optional[str] = None,
        class_label: Optional[int] = None,
        collect_traces: bool = False,
    ) -> GenerationResult:
        """Reference run with every optimization disabled."""
        pipeline = self.model.make_pipeline()
        diffusion = pipeline.generate(
            seed=seed,
            prompt=prompt,
            class_label=class_label,
            collect_traces=collect_traces,
        )
        return GenerationResult(sample=diffusion.sample, stats=RunStats(),
                                diffusion=diffusion)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _make_provider(self, ffn_reuse: Optional[FFNReuse],
                       predictor: Optional[EagerPredictor]):
        if ffn_reuse is None and predictor is None and self.activation_bits is None:
            return None
        quant_bits = self.activation_bits

        def provider(iteration: int, block: int) -> Executors:
            ffn_exec = None
            if ffn_reuse is not None:
                ffn_exec = ffn_reuse.executor_for_block(block)
            attn_exec = predictor.executor() if predictor is not None else None
            if quant_bits is not None:
                ffn_exec = _quantizing_ffn(ffn_exec, quant_bits)
                attn_exec = _quantizing_attention(attn_exec, quant_bits)
            return Executors(
                self_attention=attn_exec,
                cross_attention=attn_exec,
                ffn=ffn_exec,
            )

        return provider


def _fake_quantize(x: np.ndarray, bits: int) -> np.ndarray:
    from repro.core.logdomain import quantize_symmetric

    ints, scale = quantize_symmetric(x, bits)
    return ints.astype(np.float64) * scale


def _quantizing_ffn(inner, bits: int):
    """Wrap an FFN executor with INT activation fake-quantization."""

    def run(layer, x):
        xq = _fake_quantize(x, bits)
        if inner is not None:
            return inner(layer, xq)
        return layer.forward_exact(xq)

    return run


def _quantizing_attention(inner, bits: int):
    """Wrap an attention executor with INT activation fake-quantization."""

    def run(layer, x, context):
        xq = _fake_quantize(x, bits)
        ctxq = _fake_quantize(context, bits) if context is not None else None
        if inner is not None:
            return inner(layer, xq, ctxq)
        return layer.forward_exact(xq, ctxq)

    return run
