"""Log-domain arithmetic for eager prediction (paper Fig. 5 (a), Fig. 15).

The eager-prediction engine approximates integers by the position of their
leading-one bit, turning multiplications into additions plus shifts.
EXION's improvement, two-step leading-one detection (TS-LOD), keeps the two
most significant set bits, halving the worst-case approximation error at
the cost of quadrupling the addition operands (which the hardware absorbs
with one-hot OR-gate adder trees).

Functions operate on integer arrays; :func:`quantize_symmetric` maps float
activations into the INT range the hardware datapath uses.
"""

from __future__ import annotations

import numpy as np


def quantize_symmetric(x: np.ndarray, bits: int) -> tuple[np.ndarray, float]:
    """Symmetric linear quantization to signed ``bits``-wide integers.

    Returns the integer array and the scale such that ``x ~= ints * scale``.
    """
    if not 2 <= bits <= 32:
        raise ValueError("bits must be in [2, 32]")
    x = np.asarray(x, dtype=np.float64)
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    qmax = (1 << (bits - 1)) - 1
    if max_abs == 0.0:
        return np.zeros_like(x, dtype=np.int64), 1.0
    scale = max_abs / qmax
    ints = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int64)
    return ints, scale


def leading_one_position(x: np.ndarray) -> np.ndarray:
    """Bit position of the leading one of ``|x|``; -1 where ``x == 0``.

    Position 0 is the least-significant bit, so ``leading_one_position(8)``
    is 3 (``1000``), matching the paper's MSB-first detection.
    """
    mags = np.abs(np.asarray(x, dtype=np.int64))
    out = np.full(mags.shape, -1, dtype=np.int64)
    nonzero = mags > 0
    if np.any(nonzero):
        out[nonzero] = np.floor(np.log2(mags[nonzero])).astype(np.int64)
    return out


def lod_approximate(x: np.ndarray) -> np.ndarray:
    """One-step LOD: ``x`` approximated as ``sign(x) * 2**leading_one``.

    This is the original eager-prediction approximation (FACT), which the
    paper shows loses too much accuracy on diffusion models (PSNR 11.8 on
    DiT, Fig. 15).
    """
    x = np.asarray(x, dtype=np.int64)
    pos = leading_one_position(x)
    approx = np.where(pos >= 0, np.left_shift(1, np.maximum(pos, 0)), 0)
    return np.sign(x) * approx


def ts_lod_approximate(x: np.ndarray) -> np.ndarray:
    """Two-step LOD: keep the two most significant set bits of ``|x|``.

    The paper's improvement (Section IV-D): after detecting the leading
    one, clear it and detect once more, approximating ``x`` as
    ``sign(x) * (2**p1 + 2**p2)``.
    """
    x = np.asarray(x, dtype=np.int64)
    mags = np.abs(x)
    p1 = leading_one_position(mags)
    first = np.where(p1 >= 0, np.left_shift(1, np.maximum(p1, 0)), 0)
    remainder = mags - first
    p2 = leading_one_position(remainder)
    second = np.where(p2 >= 0, np.left_shift(1, np.maximum(p2, 0)), 0)
    return np.sign(x) * (first + second)


def approximate(x: np.ndarray, mode: str) -> np.ndarray:
    """Dispatch on the prediction mode (``lod`` / ``ts_lod`` / ``exact``)."""
    if mode == "lod":
        return lod_approximate(x)
    if mode == "ts_lod":
        return ts_lod_approximate(x)
    if mode == "exact":
        return np.asarray(x, dtype=np.int64)
    raise ValueError(f"unknown log-domain mode {mode!r}")


def decompose_powers(value: int, max_terms: int = 2) -> list[int]:
    """Bit positions of the ``max_terms`` most significant set bits.

    Used by the EPRE hardware model: each term becomes one one-hot operand
    of the OR-gate adder tree.
    """
    if value < 0:
        value = -value
    positions: list[int] = []
    while value > 0 and len(positions) < max_terms:
        pos = int(value).bit_length() - 1
        positions.append(pos)
        value -= 1 << pos
    return positions


def quantize_symmetric_batched(
    x: np.ndarray, bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-sample symmetric quantization over the leading (batch) axis.

    Each slice ``x[b]`` is quantized with its own scale, exactly as if
    :func:`quantize_symmetric` had been called on it alone — the property
    the batched serving path relies on to keep per-request results
    identical to sequential runs. Returns ``(ints, scales)`` with
    ``scales`` of shape ``(batch,)``.
    """
    if not 2 <= bits <= 32:
        raise ValueError("bits must be in [2, 32]")
    x = np.asarray(x, dtype=np.float64)
    if x.ndim < 2:
        raise ValueError("need at least a (batch, ...) array")
    batch = x.shape[0]
    expand = (slice(None),) + (None,) * (x.ndim - 1)
    max_abs = np.abs(x).reshape(batch, -1).max(axis=1) if x.size else np.zeros(batch)
    qmax = (1 << (bits - 1)) - 1
    scales = np.where(max_abs == 0.0, 1.0, max_abs / qmax)
    ints = np.clip(np.round(x / scales[expand]), -qmax, qmax).astype(np.int64)
    return ints, scales


class LogOperand:
    """Plan-time half of a log-domain matmul operand.

    Quantizing and LOD-approximating an operand is a pure function of its
    values and the ``(mode, bits)`` pair, so an operand reused across many
    matmuls — a weight matrix, or an activation multiplied against several
    weights — can be prepared once and replayed. ``prepare_log_operand``
    performs exactly the per-call operand work of
    :func:`log_domain_matmul`, so prepared and unprepared paths cannot
    drift.
    """

    __slots__ = ("approx", "scale")

    def __init__(self, approx: np.ndarray, scale: float) -> None:
        self.approx = approx
        self.scale = scale


def prepare_log_operand(
    x: np.ndarray, mode: str = "ts_lod", bits: int = 12
) -> LogOperand:
    """Quantize + LOD-approximate one matmul operand (cacheable)."""
    ints, scale = quantize_symmetric(x, bits)
    return LogOperand(approximate(ints, mode).astype(np.float64), scale)


def log_domain_matmul_prepared(a: LogOperand, b: LogOperand) -> np.ndarray:
    """Step-time half: multiply two prepared operands and rescale."""
    return (a.approx @ b.approx) * (a.scale * b.scale)


def log_domain_matmul(
    a: np.ndarray,
    b: np.ndarray,
    mode: str = "ts_lod",
    bits: int = 12,
) -> np.ndarray:
    """Approximate ``a @ b`` the way the EPRE computes predictions.

    Both float operands are quantized to ``bits``-wide integers, each
    integer is approximated to its LOD / TS-LOD power-of-two form (so a
    hardware multiply becomes shift-and-OR), and the products are
    accumulated exactly. The result is rescaled back to the float domain.

    The numerical output equals what the shift-based hardware produces;
    only the execution strategy differs.
    """
    return log_domain_matmul_prepared(
        prepare_log_operand(a, mode, bits), prepare_log_operand(b, mode, bits)
    )


def log_domain_matmul_batched(
    a: np.ndarray,
    b: np.ndarray,
    mode: str = "ts_lod",
    bits: int = 12,
) -> np.ndarray:
    """Batched :func:`log_domain_matmul`: ``a`` is ``(batch, tokens, in)``.

    The weight operand ``b`` is shared across the batch (one quantization),
    while every activation slice ``a[i]`` gets its own quantization scale,
    so each batch item's prediction equals the sequential
    ``log_domain_matmul(a[i], b)`` result bit for bit.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 3:
        raise ValueError(f"expected (batch, tokens, in) input, got {a.shape}")
    a_int, a_scales = quantize_symmetric_batched(a, bits)
    b_int, b_scale = quantize_symmetric(b, bits)
    a_approx = approximate(a_int, mode).astype(np.float64)
    b_approx = approximate(b_int, mode).astype(np.float64)
    return (a_approx @ b_approx) * (a_scales[:, None, None] * b_scale)
