"""Log-domain arithmetic for eager prediction (paper Fig. 5 (a), Fig. 15).

The eager-prediction engine approximates integers by the position of their
leading-one bit, turning multiplications into additions plus shifts.
EXION's improvement, two-step leading-one detection (TS-LOD), keeps the two
most significant set bits, halving the worst-case approximation error at
the cost of quadrupling the addition operands (which the hardware absorbs
with one-hot OR-gate adder trees).

Functions operate on integer arrays; :func:`quantize_symmetric` maps float
activations into the INT range the hardware datapath uses.
"""

from __future__ import annotations

import numpy as np


def quantize_symmetric(x: np.ndarray, bits: int) -> tuple[np.ndarray, float]:
    """Symmetric linear quantization to signed ``bits``-wide integers.

    Returns the integer array and the scale such that ``x ~= ints * scale``.
    """
    if not 2 <= bits <= 32:
        raise ValueError("bits must be in [2, 32]")
    x = np.asarray(x, dtype=np.float64)
    max_abs = float(np.max(np.abs(x))) if x.size else 0.0
    qmax = (1 << (bits - 1)) - 1
    if max_abs == 0.0:
        return np.zeros_like(x, dtype=np.int64), 1.0
    scale = max_abs / qmax
    ints = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int64)
    return ints, scale


def leading_one_position(x: np.ndarray) -> np.ndarray:
    """Bit position of the leading one of ``|x|``; -1 where ``x == 0``.

    Position 0 is the least-significant bit, so ``leading_one_position(8)``
    is 3 (``1000``), matching the paper's MSB-first detection.
    """
    mags = np.abs(np.asarray(x, dtype=np.int64))
    out = np.full(mags.shape, -1, dtype=np.int64)
    nonzero = mags > 0
    if np.any(nonzero):
        out[nonzero] = np.floor(np.log2(mags[nonzero])).astype(np.int64)
    return out


def lod_approximate(x: np.ndarray) -> np.ndarray:
    """One-step LOD: ``x`` approximated as ``sign(x) * 2**leading_one``.

    This is the original eager-prediction approximation (FACT), which the
    paper shows loses too much accuracy on diffusion models (PSNR 11.8 on
    DiT, Fig. 15).
    """
    x = np.asarray(x, dtype=np.int64)
    pos = leading_one_position(x)
    approx = np.where(pos >= 0, np.left_shift(1, np.maximum(pos, 0)), 0)
    return np.sign(x) * approx


def ts_lod_approximate(x: np.ndarray) -> np.ndarray:
    """Two-step LOD: keep the two most significant set bits of ``|x|``.

    The paper's improvement (Section IV-D): after detecting the leading
    one, clear it and detect once more, approximating ``x`` as
    ``sign(x) * (2**p1 + 2**p2)``.
    """
    x = np.asarray(x, dtype=np.int64)
    mags = np.abs(x)
    p1 = leading_one_position(mags)
    first = np.where(p1 >= 0, np.left_shift(1, np.maximum(p1, 0)), 0)
    remainder = mags - first
    p2 = leading_one_position(remainder)
    second = np.where(p2 >= 0, np.left_shift(1, np.maximum(p2, 0)), 0)
    return np.sign(x) * (first + second)


def approximate(x: np.ndarray, mode: str) -> np.ndarray:
    """Dispatch on the prediction mode (``lod`` / ``ts_lod`` / ``exact``)."""
    if mode == "lod":
        return lod_approximate(x)
    if mode == "ts_lod":
        return ts_lod_approximate(x)
    if mode == "exact":
        return np.asarray(x, dtype=np.int64)
    raise ValueError(f"unknown log-domain mode {mode!r}")


def decompose_powers(value: int, max_terms: int = 2) -> list[int]:
    """Bit positions of the ``max_terms`` most significant set bits.

    Used by the EPRE hardware model: each term becomes one one-hot operand
    of the OR-gate adder tree.
    """
    if value < 0:
        value = -value
    positions: list[int] = []
    while value > 0 and len(positions) < max_terms:
        pos = int(value).bit_length() - 1
        positions.append(pos)
        value -= 1 << pos
    return positions


def log_domain_matmul(
    a: np.ndarray,
    b: np.ndarray,
    mode: str = "ts_lod",
    bits: int = 12,
) -> np.ndarray:
    """Approximate ``a @ b`` the way the EPRE computes predictions.

    Both float operands are quantized to ``bits``-wide integers, each
    integer is approximated to its LOD / TS-LOD power-of-two form (so a
    hardware multiply becomes shift-and-OR), and the products are
    accumulated exactly. The result is rescaled back to the float domain.

    The numerical output equals what the shift-based hardware produces;
    only the execution strategy differs.
    """
    a_int, a_scale = quantize_symmetric(a, bits)
    b_int, b_scale = quantize_symmetric(b, bits)
    a_approx = approximate(a_int, mode).astype(np.float64)
    b_approx = approximate(b_int, mode).astype(np.float64)
    return (a_approx @ b_approx) * (a_scale * b_scale)
