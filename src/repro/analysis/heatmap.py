"""ASCII heatmap rendering (terminal version of the paper's Fig. 7 (a)).

Matplotlib is unavailable offline, so heatmaps render as character ramps —
enough to eyeball the diagonal-band structure of the cosine-similarity
matrix.
"""

from __future__ import annotations

import numpy as np

#: Character ramp from low to high values.
RAMP = " .:-=+*#%@"


def render_heatmap(
    matrix: np.ndarray,
    vmin: float = None,
    vmax: float = None,
    max_size: int = 40,
    axis_label: str = "",
) -> str:
    """Render a 2-D array as an ASCII heatmap string.

    Large matrices are downsampled by block-averaging to ``max_size``.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("heatmap input must be 2-D")
    matrix = _downsample(matrix, max_size)
    lo = float(matrix.min()) if vmin is None else vmin
    hi = float(matrix.max()) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0
    levels = np.clip(((matrix - lo) / span) * (len(RAMP) - 1), 0,
                     len(RAMP) - 1).astype(int)
    lines = ["".join(RAMP[v] for v in row) for row in levels]
    if axis_label:
        lines.append(f"[{axis_label}; '{RAMP[0]}'={lo:.2f} .. "
                     f"'{RAMP[-1]}'={hi:.2f}]")
    return "\n".join(lines)


def _downsample(matrix: np.ndarray, max_size: int) -> np.ndarray:
    rows, cols = matrix.shape
    if rows <= max_size and cols <= max_size:
        return matrix
    r_factor = -(-rows // max_size)
    c_factor = -(-cols // max_size)
    r_pad = (-rows) % r_factor
    c_pad = (-cols) % c_factor
    padded = np.pad(matrix, ((0, r_pad), (0, c_pad)), mode="edge")
    shaped = padded.reshape(
        padded.shape[0] // r_factor, r_factor,
        padded.shape[1] // c_factor, c_factor,
    )
    return shaped.mean(axis=(1, 3))


def render_bitmask(mask, max_size: int = 64) -> str:
    """Render a :class:`repro.core.bitmask.Bitmask` ('#' = non-sparse)."""
    grid = np.asarray(mask.mask, dtype=float)
    grid = _downsample(grid, max_size)
    lines = []
    for row in grid:
        lines.append("".join("#" if v > 0.5 else "." for v in row))
    return "\n".join(lines)
