"""Plain-text table formatting for the benchmark harness output."""

from __future__ import annotations

from typing import Optional


def percent(value: float, digits: int = 1) -> str:
    """Format a ratio as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"


def format_seconds(seconds: float) -> str:
    """Human-scale duration: picks s / ms / us by magnitude."""
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.1f} us"


def format_table(
    headers: list,
    rows: list,
    title: Optional[str] = None,
) -> str:
    """Fixed-width table; cells are stringified with str()."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
