"""Analysis helpers: operation counting, similarity studies, reporting."""

from repro.analysis.heatmap import render_bitmask, render_heatmap
from repro.analysis.opcount import operation_breakdown, operation_breakdown_table
from repro.analysis.report import format_table, percent
from repro.analysis.similarity import (
    adjacent_differences,
    cosine_similarity_matrix,
    gelu_outputs_by_iteration,
)

__all__ = [
    "adjacent_differences",
    "cosine_similarity_matrix",
    "format_table",
    "gelu_outputs_by_iteration",
    "operation_breakdown",
    "operation_breakdown_table",
    "percent",
    "render_bitmask",
    "render_heatmap",
]
