"""Operation-count breakdowns (paper Fig. 4).

Counts are analytic, derived from the published model dimensions via
:mod:`repro.hw.mapping`, and grouped into the paper's categories: QKV
projection, attention computation, FFN layers and everything else.
"""

from __future__ import annotations

from repro.hw.mapping import iteration_macs
from repro.workloads.specs import BENCHMARK_ORDER, ModelSpec, get_spec


def operation_breakdown(spec: ModelSpec) -> dict:
    """Per-iteration operation counts (2 ops per MAC) by Fig. 4 category."""
    macs = iteration_macs(spec)
    ops = {kind: 2 * value for kind, value in macs.items()}
    total = sum(ops.values())
    shares = {kind: (value / total if total else 0.0) for kind, value in ops.items()}
    transformer = ops["qkv"] + ops["attention"] + ops["ffn"]
    return {
        "ops": ops,
        "total_ops": total,
        "shares": shares,
        "transformer_share": transformer / total if total else 0.0,
        "ffn_share_of_transformer": ops["ffn"] / transformer if transformer else 0.0,
    }


def operation_breakdown_table(models=BENCHMARK_ORDER) -> list:
    """Fig. 4 rows for every benchmark model."""
    rows = []
    for name in models:
        spec = get_spec(name)
        info = operation_breakdown(spec)
        rows.append(
            {
                "model": spec.display_name,
                "total_ops": info["total_ops"],
                "paper_total_ops": spec.paper_total_ops,
                "qkv_share": info["shares"]["qkv"],
                "attention_share": info["shares"]["attention"],
                "ffn_share": info["shares"]["ffn"],
                "etc_share": info["shares"]["etc"],
                "transformer_share": info["transformer_share"],
                "paper_transformer_share": spec.paper_transformer_share,
                "ffn_share_of_transformer": info["ffn_share_of_transformer"],
            }
        )
    return rows
