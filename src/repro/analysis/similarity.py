"""Inter-iteration similarity analysis (paper Fig. 7).

The rationale behind FFN-Reuse: GELU outputs of the same block are highly
similar across adjacent denoising iterations, and where they differ, the
differing positions recur. These helpers reproduce the paper's heatmap and
adjacent-difference study on any benchmark model.
"""

from __future__ import annotations

import numpy as np

from repro.core.pipeline import ExionPipeline
from repro.models.zoo import BenchmarkModel
from repro.workloads.metrics import cosine_similarity


def gelu_outputs_by_iteration(
    model: BenchmarkModel,
    block: int = 1,
    seed: int = 0,
    prompt: str = None,
    class_label: int = None,
) -> list:
    """Non-linearity outputs of one block for every denoising iteration."""
    from repro.core.config import ExionConfig

    pipeline = ExionPipeline(
        model, ExionConfig(enable_ffn_reuse=False, enable_eager_prediction=False)
    )
    result = pipeline.generate_vanilla(
        seed=seed, prompt=prompt, class_label=class_label, collect_traces=True
    )
    outputs = []
    for traces in result.diffusion.block_traces:
        outputs.append(traces[block].ffn.hidden.copy())
    return outputs


def cosine_similarity_matrix(outputs: list) -> np.ndarray:
    """Pairwise cosine-similarity heatmap across iterations (Fig. 7 (a))."""
    n = len(outputs)
    matrix = np.eye(n)
    for i in range(n):
        for j in range(i + 1, n):
            sim = cosine_similarity(outputs[i], outputs[j])
            matrix[i, j] = sim
            matrix[j, i] = sim
    return matrix


def adjacent_differences(outputs: list) -> list:
    """|delta| between adjacent iterations' outputs (Fig. 7 (b))."""
    return [
        np.abs(outputs[i + 1] - outputs[i]) for i in range(len(outputs) - 1)
    ]


def difference_position_overlap(outputs: list, quantile: float = 0.95) -> float:
    """How consistently the large-difference positions recur.

    For each adjacent pair, take the positions whose |delta| exceeds the
    per-pair quantile; return the mean Jaccard overlap between consecutive
    position sets. High overlap is what makes a *fixed* per-dense-iteration
    bitmask safe for N sparse iterations.
    """
    diffs = adjacent_differences(outputs)
    if len(diffs) < 2:
        return 1.0
    sets = []
    for diff in diffs:
        threshold = np.quantile(diff, quantile)
        sets.append(set(map(tuple, np.argwhere(diff > threshold))))
    overlaps = []
    for a, b in zip(sets[:-1], sets[1:]):
        union = a | b
        if union:
            overlaps.append(len(a & b) / len(union))
    return float(np.mean(overlaps)) if overlaps else 1.0
