"""Visualize ConMerge: sparse bitmask -> condensed -> merged tile blocks.

Renders (in ASCII) an FFN output bitmask at a chosen sparsity, the
condensed version, and the occupancy of the merged tile blocks the SDUE
executes, together with the Fig. 7-style cosine-similarity heatmap that
motivates FFN-Reuse.

Run:  python examples/conmerge_visualization.py
"""

import numpy as np

from repro.analysis.heatmap import render_bitmask, render_heatmap
from repro.analysis.similarity import (
    cosine_similarity_matrix,
    gelu_outputs_by_iteration,
)
from repro.core.bitmask import Bitmask
from repro.core.conmerge.cvg import conmerge
from repro.models.zoo import build_model
from repro.workloads.generator import ffn_output_bitmask


def main() -> None:
    rng = np.random.default_rng(3)
    mask = ffn_output_bitmask(16, 64, sparsity=0.92, dead_col_fraction=0.25,
                              rng=rng)
    print(f"FFN output bitmask (16 x 64, {mask.sparsity:.0%} sparse, "
          f"'#' = recompute):")
    print(render_bitmask(mask))
    print()

    result = conmerge(mask, width=16)
    print(f"condensing: {result.condensed_cols}/{result.original_cols} "
          f"columns survive")
    print(f"merging   : {len(result.blocks)} tile blocks, "
          f"{result.physical_columns} physical columns "
          f"({result.remaining_column_ratio:.0%} of original), "
          f"utilization {result.utilization:.0%}")
    print()
    for index, block in enumerate(result.blocks):
        cv = sum(1 for v in block.conflict_vector if v is not None)
        print(f"block {index}: origins={block.num_origins} "
              f"elements={block.num_elements} conflict-vector entries={cv}")
        print(render_bitmask(Bitmask(block.occupancy())))
        print()

    print("Why reuse works — cosine similarity of DiT GELU outputs across")
    print("denoising iterations (Fig. 7 (a); bright diagonal = adjacent")
    print("iterations nearly identical):")
    model = build_model("dit", seed=0, total_iterations=16)
    outputs = gelu_outputs_by_iteration(model, block=1, seed=3, class_label=2)
    matrix = cosine_similarity_matrix(outputs)
    print(render_heatmap(matrix, vmin=0.0, vmax=1.0,
                         axis_label="iteration x iteration"))


if __name__ == "__main__":
    main()
