"""Simulate EXION hardware against GPU baselines for any benchmark model.

Reproduces the paper's evaluation flow end-to-end for one model:

1. run the model at simulation scale to *measure* its output sparsity,
2. build a paper-scale sparsity profile from the measurements,
3. simulate EXION4 / EXION24 (cycle + energy model seeded with the paper's
   Table II/III numbers) and the edge/server GPU roofline baselines,
4. print the latency and energy-efficiency comparison.

Run:  python examples/accelerator_simulation.py [model]
      (models: mld mdm edge make_an_audio stable_diffusion dit videocrafter2)
"""

import sys

from repro import ExionConfig, ExionPipeline, build_model
from repro.analysis.report import format_table
from repro.baselines.gpu import GPUModel
from repro.baselines.specs import EDGE_GPU, SERVER_GPU
from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import profile_from_stats


def main(name: str) -> None:
    model = build_model(name, seed=0, total_iterations=12)
    spec = model.spec
    print(f"measuring output sparsity of {spec.display_name} "
          f"at simulation scale...")
    result = ExionPipeline(model, ExionConfig.for_model(name)).generate(
        seed=3, prompt="accelerator demo"
    )
    profile = profile_from_stats(spec, result.stats)
    print(f"  FFN sparsity {profile.ffn_sparsity:.1%}, "
          f"attention sparsity {profile.attn_sparsity:.1%}, "
          f"ConMerge remaining columns {profile.ffn_remaining_ratio:.1%}")
    print()

    devices = [
        ("edge GPU (Jetson Orin Nano)", GPUModel(EDGE_GPU).simulate(spec)),
        ("server GPU (RTX 6000 Ada)", GPUModel(SERVER_GPU).simulate(spec)),
        ("EXION4_All", ExionAccelerator.exion4().simulate(spec, profile)),
        ("EXION24_All", ExionAccelerator.exion24().simulate(spec, profile)),
    ]
    rows = []
    for label, report in devices:
        rows.append([
            label,
            f"{report.latency_s * 1e3:10.3f} ms",
            f"{report.energy_j:10.4f} J",
            f"{report.effective_tops:8.2f}",
            f"{report.tops_per_watt:8.3f}",
        ])
    print(format_table(
        ["device", "latency", "energy", "eff. TOPS", "TOPS/W"],
        rows,
        title=(f"{spec.display_name}: one generation "
               f"({spec.total_iterations} iterations at paper scale)"),
    ))
    print()
    edge_gpu, server_gpu = devices[0][1], devices[1][1]
    ex4, ex24 = devices[2][1], devices[3][1]
    print(f"EXION4 vs edge GPU   : {edge_gpu.latency_s / ex4.latency_s:8.1f}x "
          f"faster, {ex4.tops_per_watt / edge_gpu.tops_per_watt:8.1f}x more "
          f"energy-efficient")
    print(f"EXION24 vs server GPU: {server_gpu.latency_s / ex24.latency_s:8.1f}x "
          f"faster, {ex24.tops_per_watt / server_gpu.tops_per_watt:8.1f}x more "
          f"energy-efficient")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "dit")
