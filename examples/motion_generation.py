"""Text- and music-to-motion generation under EXION.

Covers the paper's motion workloads: MLD (text-to-motion, UNet without
ResBlocks) and EDGE (music-to-motion, transformer-only). The generated
latents are interpreted as motion frames; motion-specific proxy metrics
(beat alignment, physical-foot-contact smoothness) compare vanilla and
EXION-optimized outputs, mirroring the paper's Table I protocol of
out-of-dataset prompts.

Run:  python examples/motion_generation.py
"""

from repro import ExionConfig, ExionPipeline, build_model
from repro.analysis.report import format_table, percent
from repro.workloads.metrics import (
    beat_alignment_proxy,
    physical_foot_contact_proxy,
    psnr,
)

PROMPTS = {
    "mld": "he jumped over the fence in one smooth motion",
    "edge": "butter by bts",  # the paper's out-of-dataset music input
}


def run_model(name: str, prompt: str) -> list:
    model = build_model(name, seed=0)
    pipeline = ExionPipeline(model, ExionConfig.for_model(name))
    vanilla = pipeline.generate_vanilla(seed=11, prompt=prompt)
    optimized = pipeline.generate(seed=11, prompt=prompt)
    stats = optimized.stats
    return [
        model.spec.display_name,
        model.spec.task,
        percent(stats.ffn_output_sparsity),
        f"{psnr(vanilla.sample, optimized.sample):.1f} dB",
        f"{beat_alignment_proxy(vanilla.sample):.3f} / "
        f"{beat_alignment_proxy(optimized.sample):.3f}",
        f"{physical_foot_contact_proxy(vanilla.sample):.3f} / "
        f"{physical_foot_contact_proxy(optimized.sample):.3f}",
    ]


def main() -> None:
    rows = [run_model(name, prompt) for name, prompt in PROMPTS.items()]
    print(format_table(
        ["model", "task", "FFN sparsity", "PSNR", "beat-align (van/opt)",
         "PFC (van/opt)"],
        rows,
        title="Motion generation under EXION (out-of-dataset inputs)",
    ))
    print()
    print("The optimized run stays correlated with the vanilla run (PSNR)")
    print("while reusing ~95% of FFN outputs across iterations. As in the")
    print("paper's Table I, individual motion metrics can drift even when")
    print("the generated output remains usable (their MDM/EDGE rows show")
    print("the same: one metric degrades while visual quality holds).")


if __name__ == "__main__":
    main()
