"""Text-to-image generation with the full EXION ablation ladder.

The paper's motivating workload (Section I): Stable Diffusion-style
text-to-image generation. Generates the same prompt under the four
evaluation configurations — vanilla, FFN-Reuse, FFN-Reuse + EP, and
FFN-Reuse + EP + INT12 quantization (Table I rows) — and prints the
accuracy/compute trade-off of each.

Run:  python examples/text_to_image_generation.py [prompt]
"""

import sys

from repro import ExionConfig, ExionPipeline, build_model
from repro.analysis.report import format_table, percent
from repro.workloads.metrics import psnr

MODEL = "stable_diffusion"


def main(prompt: str) -> None:
    model = build_model(MODEL, seed=0)
    spec = model.spec
    print(f"model : {spec.display_name} "
          f"(UNet with ResBlocks, GEGLU FFNs, {spec.total_iterations} steps)")
    print(f"prompt: {prompt!r}")
    print()

    base_pipe = ExionPipeline(model, ExionConfig.for_model(MODEL))
    vanilla = base_pipe.generate_vanilla(seed=7, prompt=prompt)

    runs = [
        ("FFN-Reuse", ExionPipeline(
            model, ExionConfig.for_model(MODEL, enable_eager_prediction=False)
        ), {}),
        ("FFN-Reuse + EP", base_pipe, {}),
        ("FFN-Reuse + EP + Quant(INT12)", ExionPipeline(
            model, ExionConfig.for_model(MODEL), activation_bits=12
        ), {}),
    ]

    rows = [["vanilla", "-", "-", "-", "inf"]]
    for label, pipeline, _ in runs:
        result = pipeline.generate(seed=7, prompt=prompt)
        stats = result.stats
        rows.append([
            label,
            percent(stats.ffn_output_sparsity),
            percent(stats.attention_output_sparsity),
            percent(stats.ffn_ops_reduction),
            f"{psnr(vanilla.sample, result.sample):.2f} dB",
        ])

    print(format_table(
        ["configuration", "inter-iter sparsity", "intra-iter sparsity",
         "FFN ops skipped", "PSNR vs vanilla"],
        rows,
        title="Stable Diffusion under EXION (Table I configuration)",
    ))
    print()
    print("The generated latent is deterministic per seed; EXION's")
    print("approximations change it only slightly (high PSNR) while")
    print("skipping most FFN work across the 50 denoising iterations.")


if __name__ == "__main__":
    main(" ".join(sys.argv[1:]) or
         "a corgi dog surfing a wave with a bright yellow surfboard")
