"""Quickstart: run a diffusion model with and without EXION optimizations.

Builds the DiT benchmark model, generates the same class-conditioned sample
vanilla and EXION-optimized (FFN-Reuse + eager prediction at the paper's
Table I configuration), and reports the achieved output sparsity, the
operation reduction, and the PSNR between the two runs.

Run:  python examples/quickstart.py
"""

from repro import ExionConfig, ExionPipeline, build_model
from repro.workloads.metrics import psnr


def main() -> None:
    model = build_model("dit", seed=0)
    config = ExionConfig.for_model("dit")
    pipeline = ExionPipeline(model, config)

    print(f"model: {model.spec.display_name} ({model.spec.task})")
    print(f"iterations: {model.spec.total_iterations}, "
          f"FFN-Reuse N={config.sparse_iters_n}, "
          f"EP (q_th={config.q_threshold}, k={config.top_k_ratio})")
    print()

    print("generating (vanilla)...")
    vanilla = pipeline.generate_vanilla(seed=1, class_label=207)
    print("generating (EXION: FFN-Reuse + eager prediction)...")
    optimized = pipeline.generate(seed=1, class_label=207)

    stats = optimized.stats
    print()
    print(f"inter-iteration FFN output sparsity : {stats.ffn_output_sparsity:6.1%}")
    print(f"intra-iteration attention sparsity  : {stats.attention_output_sparsity:6.1%}")
    print(f"FFN operations skipped              : {stats.ffn_ops_reduction:6.1%}")
    print(f"Q-projection rows skipped           : {stats.q_projection_skip_rate:6.1%}")
    print(f"K/V-projection columns skipped      : {stats.kv_projection_skip_rate:6.1%}")
    print(f"dense / sparse iterations           : "
          f"{stats.dense_iterations} / {stats.sparse_iterations}")
    print()
    print(f"PSNR of optimized vs vanilla sample : "
          f"{psnr(vanilla.sample, optimized.sample):.2f} dB")


if __name__ == "__main__":
    main()
