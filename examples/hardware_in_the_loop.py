"""Hardware-in-the-loop: one FFN layer through ConMerge onto the SDUE.

Walks the full EXION mechanism for a single sparse iteration of one FFN
layer, at the component level:

1. a dense iteration produces the reuse bitmask (FFN-Reuse),
2. the CAU condenses, sorts and merges the bitmask into tile blocks,
   emitting conflict vectors and control maps,
3. the SDUE executes the merged blocks — bit-exact against the functional
   algorithm — at a fraction of the dense cycle count.

Run:  python examples/hardware_in_the_loop.py
"""

import numpy as np

from repro.core.config import ExionConfig
from repro.core.ffn_reuse import FFNReuse
from repro.core.sparsity import RunStats
from repro.hw.cau import CAUModel
from repro.hw.sdue import SDUEModel
from repro.models.ffn import FeedForward


def main() -> None:
    rng = np.random.default_rng(0)
    tokens, dim, hidden = 16, 64, 256
    ffn = FeedForward(dim, hidden, rng)

    # --- 1. dense iteration: exact compute + bitmask generation ---------
    config = ExionConfig(sparse_iters_n=3, ffn_target_sparsity=0.92)
    manager = FFNReuse(config, num_blocks=1, stats=RunStats())
    x_dense = rng.standard_normal((tokens, dim))
    manager.begin_iteration(0)
    manager.executor_for_block(0)(ffn, x_dense)
    state = manager.state_for_block(0)
    print(f"dense iteration: bitmask sparsity {state.bitmask.sparsity:.1%} "
          f"({state.bitmask.nnz}/{state.bitmask.mask.size} elements to "
          f"recompute, threshold {state.threshold:.4f})")

    # --- 2. CAU: condense + sort + merge --------------------------------
    cau = CAUModel()
    report = cau.process(state.bitmask)
    result = report.result
    print(f"CAU: {result.original_columns} columns -> "
          f"{result.condensed_columns} after condensing -> "
          f"{result.physical_columns} physical columns after merging "
          f"({result.remaining_column_ratio:.1%} remaining, "
          f"{result.num_blocks} tile blocks, "
          f"{report.merge_cycles} CVG cycles)")
    blocks = result.tile_results[0].blocks
    merged = [b for b in blocks if b.num_origins > 1]
    if merged:
        example = merged[0]
        cv = [v for v in example.conflict_vector if v is not None]
        print(f"  example merged block: {example.num_origins} origins, "
              f"{example.num_elements} active DPUs, "
              f"{len(cv)} conflict-vector entries")

    # --- 3. SDUE executes merged blocks ---------------------------------
    sdue = SDUEModel()
    x_sparse = x_dense + 0.02 * rng.standard_normal((tokens, dim))
    pre_dense = x_dense @ ffn.linear1.weight
    pre_hw = sdue.run_conmerge(
        result, x_sparse, ffn.linear1.weight, baseline=pre_dense
    )
    pre_exact = x_sparse @ ffn.linear1.weight
    mask = state.bitmask.mask
    exact_on_mask = np.allclose(pre_hw[mask], pre_exact[mask])
    reused_elsewhere = np.allclose(pre_hw[~mask], pre_dense[~mask])
    dense_cycles = sdue.dense_cycles(tokens, dim, hidden)
    print(f"SDUE: merged execution {sdue.stats.cycles} cycles vs "
          f"{dense_cycles} dense ({sdue.stats.cycles / dense_cycles:.1%}), "
          f"DPU utilization {sdue.stats.utilization:.1%}")
    print(f"  bit-exact on recomputed elements: {exact_on_mask}")
    print(f"  dense values reused elsewhere   : {reused_elsewhere}")
    assert exact_on_mask and reused_elsewhere


if __name__ == "__main__":
    main()
