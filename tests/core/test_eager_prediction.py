"""Unit tests for the eager-prediction algorithm."""

import numpy as np
import pytest

from repro.core.config import ExionConfig
from repro.core.eager_prediction import EagerPredictor
from repro.core.sparsity import RunStats
from repro.models.attention import MultiHeadAttention


def make_predictor(top_k=0.5, q_th=10.0, mode="ts_lod"):
    config = ExionConfig(
        top_k_ratio=top_k, q_threshold=q_th, lod_mode=mode,
        enable_ffn_reuse=False,
    )
    return EagerPredictor(config, stats=RunStats())


class TestPrediction:
    def test_predicted_scores_shape(self, rng):
        attn = MultiHeadAttention(16, 4, rng)
        pred = make_predictor().predict_scores(
            attn, rng.standard_normal((6, 16)), rng.standard_normal((6, 16))
        )
        assert pred.shape == (4, 6, 6)

    def test_prediction_correlates_with_exact(self, rng):
        attn = MultiHeadAttention(16, 2, rng)
        x = rng.standard_normal((8, 16))
        pred = make_predictor().predict_scores(attn, x, x)
        _, trace = attn.forward_exact(x)
        corr = np.corrcoef(pred.ravel(), trace.scores.ravel())[0, 1]
        assert corr > 0.9


class TestDecisions:
    def test_top_k_count_respected(self, rng):
        predictor = make_predictor(top_k=0.25, q_th=1e9)
        scores = rng.standard_normal((1, 8, 8))
        (decision,) = predictor.decide(scores)
        # ceil(0.25 * 8) = 2 kept per row.
        np.testing.assert_array_equal(decision.keep.sum(axis=1), np.full(8, 2))

    def test_top_k_one_keeps_everything(self, rng):
        predictor = make_predictor(top_k=1.0, q_th=1e9)
        (decision,) = predictor.decide(rng.standard_normal((1, 4, 4)))
        assert decision.keep.all()

    def test_dominance_collapses_row(self):
        predictor = make_predictor(top_k=0.5, q_th=1.0)
        scores = np.array([[[10.0, 0.0, 0.0, 0.0],
                            [1.0, 0.9, 0.8, 0.7]]])
        (decision,) = predictor.decide(scores)
        assert decision.one_hot_rows[0]
        assert not decision.one_hot_rows[1]
        assert decision.one_hot_cols[0] == 0
        # Collapsed row keeps no exact-score elements.
        assert decision.keep[0].sum() == 0

    def test_skipped_elements_counted(self):
        predictor = make_predictor(top_k=0.5, q_th=1e9)
        scores = np.zeros((1, 4, 4))
        scores[0, :, :2] = 1.0
        (decision,) = predictor.decide(scores)
        assert decision.skipped_elements == 8


class TestExecutor:
    def test_full_keep_matches_exact(self, rng):
        """top_k=1 and an unreachable q_th must reproduce exact attention."""
        attn = MultiHeadAttention(16, 2, rng)
        predictor = make_predictor(top_k=1.0, q_th=1e9)
        x = rng.standard_normal((6, 16))
        out, _ = attn(x, executor=predictor.executor())
        exact, _ = attn.forward_exact(x)
        np.testing.assert_allclose(out, exact, atol=1e-9)

    def test_sparse_output_close_to_exact(self, rng):
        attn = MultiHeadAttention(16, 2, rng)
        predictor = make_predictor(top_k=0.5, q_th=1e9)
        x = rng.standard_normal((8, 16))
        out, trace = attn(x, executor=predictor.executor())
        exact, _ = attn.forward_exact(x)
        rel = np.linalg.norm(out - exact) / np.linalg.norm(exact)
        assert rel < 0.5
        assert trace.output_sparsity > 0.0

    def test_cross_attention_supported(self, rng):
        attn = MultiHeadAttention(16, 2, rng, context_dim=8)
        predictor = make_predictor(top_k=0.5, q_th=1e9)
        x = rng.standard_normal((6, 16))
        ctx = rng.standard_normal((4, 8))
        out, trace = attn(x, context=ctx, executor=predictor.executor())
        assert out.shape == (6, 16)
        assert trace.scores.shape == (2, 6, 4)

    def test_one_hot_rows_return_argmax_value_row(self, rng):
        attn = MultiHeadAttention(8, 1, rng)
        predictor = make_predictor(top_k=0.5, q_th=0.0)  # everything one-hot
        x = rng.standard_normal((4, 8))
        out, trace = attn(x, executor=predictor.executor())
        # All rows collapsed: probabilities are one-hot.
        assert np.all(trace.probs.sum(axis=-1) == 1.0)
        assert np.all((trace.probs == 0) | (trace.probs == 1))

    def test_probs_rows_are_distributions(self, rng):
        attn = MultiHeadAttention(16, 2, rng)
        predictor = make_predictor(top_k=0.5, q_th=0.5)
        x = rng.standard_normal((8, 16))
        _, trace = attn(x, executor=predictor.executor())
        np.testing.assert_allclose(
            trace.probs.sum(axis=-1), np.ones((2, 8)), atol=1e-9
        )


class TestStatistics:
    def test_sparsity_tracks_top_k(self, rng):
        attn = MultiHeadAttention(16, 2, rng)
        predictor = make_predictor(top_k=0.25, q_th=1e9)
        x = rng.standard_normal((8, 16))
        attn(x, executor=predictor.executor())
        assert predictor.stats.attention_sparsities[0] == pytest.approx(
            0.75, abs=0.01
        )

    def test_projection_skips_accumulated(self, rng):
        attn = MultiHeadAttention(16, 2, rng)
        predictor = make_predictor(top_k=0.1, q_th=0.2)
        x = rng.standard_normal((16, 16))
        attn(x, executor=predictor.executor())
        stats = predictor.stats
        assert stats.q_projection.dense > 0
        assert stats.kv_projection.dense > 0
        assert 0.0 <= stats.q_projection_skip_rate <= 1.0
        assert 0.0 <= stats.kv_projection_skip_rate <= 1.0

    def test_prediction_overhead_counted(self, rng):
        attn = MultiHeadAttention(16, 2, rng)
        predictor = make_predictor()
        attn(rng.standard_normal((4, 16)), executor=predictor.executor())
        assert predictor.stats.prediction_overhead_macs > 0

    def test_keepmasks_collected_when_enabled(self, rng):
        attn = MultiHeadAttention(16, 2, rng)
        config = ExionConfig(top_k_ratio=0.5, q_threshold=1e9)
        predictor = EagerPredictor(config, collect_keepmasks=True)
        attn(rng.standard_normal((4, 16)), executor=predictor.executor())
        assert len(predictor.stats.attention_keepmasks) == 1
        assert predictor.stats.attention_keepmasks[0].shape == (2, 4, 4)
