"""Unit tests for the FFN-Reuse algorithm."""

import numpy as np
import pytest

from repro.core.config import ExionConfig
from repro.core.ffn_reuse import FFNReuse, schedule_phases
from repro.core.sparsity import RunStats
from repro.models.ffn import FeedForward


@pytest.fixture
def ffn(rng):
    return FeedForward(8, 32, rng)


def make_manager(n=3, target=0.8, num_blocks=1, **kwargs):
    config = ExionConfig(sparse_iters_n=n, ffn_target_sparsity=target, **kwargs)
    return FFNReuse(config, num_blocks=num_blocks, stats=RunStats())


class TestSchedule:
    def test_one_dense_then_n_sparse(self):
        phases = schedule_phases(7, 2)
        assert phases == [True, False, False, True, False, False, True]

    def test_zero_sparse_is_all_dense(self):
        assert schedule_phases(3, 0) == [True, True, True]

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            schedule_phases(-1, 2)
        with pytest.raises(ValueError):
            schedule_phases(3, -1)


class TestPhaseControl:
    def test_dense_iteration_detection(self):
        mgr = make_manager(n=3)
        expected = [True, False, False, False, True, False]
        for i, want in enumerate(expected):
            mgr.begin_iteration(i)
            assert mgr.is_dense_iteration is want

    def test_stats_count_phases(self):
        mgr = make_manager(n=1)
        for i in range(4):
            mgr.begin_iteration(i)
        assert mgr.stats.dense_iterations == 2
        assert mgr.stats.sparse_iterations == 2

    def test_rejects_negative_iteration(self):
        with pytest.raises(ValueError):
            make_manager().begin_iteration(-1)

    def test_executor_requires_begin(self, ffn, rng):
        mgr = make_manager()
        with pytest.raises(RuntimeError, match="begin_iteration"):
            mgr.executor_for_block(0)(ffn, rng.standard_normal((4, 8)))

    def test_block_index_bounds(self):
        mgr = make_manager(num_blocks=2)
        with pytest.raises(IndexError):
            mgr.executor_for_block(2)


class TestDenseIteration:
    def test_dense_matches_exact(self, ffn, rng):
        mgr = make_manager()
        mgr.begin_iteration(0)
        x = rng.standard_normal((4, 8))
        out, trace = mgr.executor_for_block(0)(ffn, x)
        exact, _ = ffn.forward_exact(x)
        np.testing.assert_allclose(out, exact)

    def test_dense_stores_state(self, ffn, rng):
        mgr = make_manager()
        mgr.begin_iteration(0)
        mgr.executor_for_block(0)(ffn, rng.standard_normal((4, 8)))
        state = mgr.state_for_block(0)
        assert state is not None
        assert state.bitmask.sparsity == pytest.approx(0.8, abs=0.05)

    def test_fixed_threshold_respected(self, ffn, rng):
        mgr = make_manager(ffn_threshold=0.25)
        mgr.begin_iteration(0)
        mgr.executor_for_block(0)(ffn, rng.standard_normal((4, 8)))
        state = mgr.state_for_block(0)
        assert state.threshold == 0.25
        np.testing.assert_array_equal(
            state.bitmask.mask, np.abs(state.hidden_dense) > 0.25
        )


class TestSparseIteration:
    def test_sparse_output_semantics(self, ffn, rng):
        """Sparse output equals: partial sums of reused elements plus the
        recomputed elements' contribution (paper Fig. 6)."""
        mgr = make_manager()
        mgr.begin_iteration(0)
        x0 = rng.standard_normal((4, 8))
        mgr.executor_for_block(0)(ffn, x0)
        state = mgr.state_for_block(0)

        x1 = x0 + 0.01 * rng.standard_normal((4, 8))
        mgr.begin_iteration(1)
        out, trace = mgr.executor_for_block(0)(ffn, x1)

        mask = state.bitmask.mask
        hidden_new = ffn.nonlinear(ffn.linear1(x1))
        mixed = np.where(mask, hidden_new, state.hidden_dense)
        expected = ffn.linear2(mixed)
        np.testing.assert_allclose(out, expected, atol=1e-10)
        assert trace.reused_from_dense

    def test_sparse_close_to_exact_for_smooth_inputs(self, ffn, rng):
        mgr = make_manager(target=0.9)
        mgr.begin_iteration(0)
        x0 = rng.standard_normal((4, 8))
        mgr.executor_for_block(0)(ffn, x0)
        x1 = x0 + 0.001 * rng.standard_normal((4, 8))
        mgr.begin_iteration(1)
        out, _ = mgr.executor_for_block(0)(ffn, x1)
        exact, _ = ffn.forward_exact(x1)
        rel = np.linalg.norm(out - exact) / np.linalg.norm(exact)
        assert rel < 0.05

    def test_sparsity_recorded(self, ffn, rng):
        mgr = make_manager(target=0.75)
        mgr.begin_iteration(0)
        mgr.executor_for_block(0)(ffn, rng.standard_normal((4, 8)))
        mgr.begin_iteration(1)
        mgr.executor_for_block(0)(ffn, rng.standard_normal((4, 8)))
        assert mgr.stats.ffn_sparsities[-1] == pytest.approx(0.75, abs=0.05)

    def test_ops_reduction_tracks_sparsity(self, ffn, rng):
        mgr = make_manager(n=4, target=0.9)
        x = rng.standard_normal((4, 8))
        for i in range(5):
            mgr.begin_iteration(i)
            mgr.executor_for_block(0)(ffn, x)
        # 1 dense + 4 sparse at 90% sparsity: layer-1 reduction ~ 0.9*4/5.
        assert mgr.stats.ffn_layer1.reduction == pytest.approx(0.72, abs=0.05)

    def test_first_iteration_always_dense_even_mid_schedule(self, ffn, rng):
        """If the first call happens at a sparse-phase index, the executor
        falls back to dense because no state exists yet."""
        mgr = make_manager()
        mgr.begin_iteration(1)  # schedule says sparse
        out, trace = mgr.executor_for_block(0)(ffn, rng.standard_normal((4, 8)))
        assert not trace.reused_from_dense


class TestGegluSupport:
    def test_sparse_semantics_with_geglu(self, rng):
        ffn = FeedForward(8, 16, rng, activation="geglu")
        mgr = make_manager()
        mgr.begin_iteration(0)
        x0 = rng.standard_normal((4, 8))
        mgr.executor_for_block(0)(ffn, x0)
        state = mgr.state_for_block(0)
        mgr.begin_iteration(1)
        x1 = x0 + 0.01 * rng.standard_normal((4, 8))
        out, _ = mgr.executor_for_block(0)(ffn, x1)
        hidden_new = ffn.nonlinear(ffn.linear1(x1))
        mixed = np.where(state.bitmask.mask, hidden_new, state.hidden_dense)
        np.testing.assert_allclose(out, ffn.linear2(mixed), atol=1e-10)

    def test_geglu_ops_count_doubled_first_layer(self, rng):
        """Each recomputed GEGLU hidden element costs two dot products."""
        ffn = FeedForward(8, 16, rng, activation="geglu")
        mgr = make_manager(target=0.5)
        x = np.random.default_rng(0).standard_normal((4, 8))
        mgr.begin_iteration(0)
        mgr.executor_for_block(0)(ffn, x)
        nnz = mgr.state_for_block(0).bitmask.nnz
        mgr.begin_iteration(1)
        mgr.executor_for_block(0)(ffn, x)
        # Sparse-iteration layer-1 computed MACs = nnz * dim * 2.
        computed = mgr.stats.ffn_layer1.computed - ffn.linear1.macs(4)
        assert computed == nnz * 8 * 2


class TestBitmaskCollection:
    def test_bitmasks_collected_when_enabled(self, ffn, rng):
        config = ExionConfig(sparse_iters_n=2, ffn_target_sparsity=0.8)
        mgr = FFNReuse(config, num_blocks=1, collect_bitmasks=True)
        mgr.begin_iteration(0)
        mgr.executor_for_block(0)(ffn, rng.standard_normal((4, 8)))
        assert len(mgr.stats.ffn_bitmasks) == 1
