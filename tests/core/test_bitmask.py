"""Unit + property tests for the Bitmask type."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.bitmask import Bitmask


def masks(max_rows=16, max_cols=32):
    return hnp.arrays(
        dtype=bool,
        shape=st.tuples(
            st.integers(1, max_rows), st.integers(1, max_cols)
        ),
    ).map(Bitmask)


class TestConstruction:
    def test_from_threshold(self):
        values = np.array([[0.1, -0.5], [2.0, 0.0]])
        mask = Bitmask.from_threshold(values, 0.4)
        np.testing.assert_array_equal(
            mask.mask, [[False, True], [True, False]]
        )

    def test_from_quantile_hits_target(self, rng):
        values = rng.standard_normal((64, 64))
        mask = Bitmask.from_quantile(values, 0.9)
        assert mask.sparsity == pytest.approx(0.9, abs=0.02)

    def test_from_quantile_rejects_bad_target(self, rng):
        with pytest.raises(ValueError):
            Bitmask.from_quantile(rng.standard_normal((4, 4)), 1.0)

    def test_dense(self):
        assert Bitmask.dense(3, 4).sparsity == 0.0

    def test_random_expected_sparsity(self, rng):
        mask = Bitmask.random(100, 100, 0.8, rng)
        assert mask.sparsity == pytest.approx(0.8, abs=0.05)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            Bitmask(np.zeros(5, dtype=bool))


class TestStatistics:
    def test_nnz_and_sparsity(self):
        mask = Bitmask(np.array([[1, 0], [0, 0]], dtype=bool))
        assert mask.nnz == 1
        assert mask.sparsity == 0.75

    def test_column_popcounts(self):
        mask = Bitmask(np.array([[1, 0, 1], [1, 0, 0]], dtype=bool))
        np.testing.assert_array_equal(mask.column_popcounts(), [2, 0, 1])

    def test_zero_and_nonzero_columns_partition(self):
        mask = Bitmask(np.array([[1, 0, 1], [1, 0, 0]], dtype=bool))
        np.testing.assert_array_equal(mask.nonzero_columns(), [0, 2])
        np.testing.assert_array_equal(mask.all_zero_columns(), [1])

    def test_pack_words(self):
        mask = Bitmask(np.array([[1, 0], [1, 1]], dtype=bool))
        np.testing.assert_array_equal(mask.pack_words(), [3, 2])


class TestOperators:
    def test_and_or_invert(self):
        a = Bitmask(np.array([[1, 0]], dtype=bool))
        b = Bitmask(np.array([[1, 1]], dtype=bool))
        np.testing.assert_array_equal((a & b).mask, [[True, False]])
        np.testing.assert_array_equal((a | b).mask, [[True, True]])
        np.testing.assert_array_equal((~a).mask, [[False, True]])

    def test_equality(self):
        a = Bitmask(np.array([[1, 0]], dtype=bool))
        assert a == Bitmask(np.array([[1, 0]], dtype=bool))
        assert a != Bitmask(np.array([[0, 0]], dtype=bool))

    def test_repr_mentions_sparsity(self):
        assert "sparsity" in repr(Bitmask.dense(2, 2))


class TestProperties:
    @given(masks())
    @settings(max_examples=60, deadline=None)
    def test_sparsity_in_unit_interval(self, mask):
        assert 0.0 <= mask.sparsity <= 1.0

    @given(masks())
    @settings(max_examples=60, deadline=None)
    def test_double_invert_is_identity(self, mask):
        assert ~(~mask) == mask

    @given(masks())
    @settings(max_examples=60, deadline=None)
    def test_nnz_equals_column_popcount_sum(self, mask):
        assert mask.nnz == int(mask.column_popcounts().sum())

    @given(masks())
    @settings(max_examples=60, deadline=None)
    def test_columns_partition(self, mask):
        nz = set(mask.nonzero_columns().tolist())
        z = set(mask.all_zero_columns().tolist())
        assert nz | z == set(range(mask.cols))
        assert nz & z == set()

    @given(masks(max_rows=16))
    @settings(max_examples=60, deadline=None)
    def test_pack_words_roundtrip(self, mask):
        words = mask.pack_words()
        rebuilt = np.zeros_like(mask.mask)
        for c, word in enumerate(words):
            for r in range(mask.rows):
                rebuilt[r, c] = bool((int(word) >> r) & 1)
        assert Bitmask(rebuilt) == mask
