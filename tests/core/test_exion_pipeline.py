"""Unit tests for the end-to-end ExionPipeline."""

import numpy as np
import pytest

from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.core.thresholds import ThresholdCalibrator
from repro.workloads.metrics import psnr


class TestVanilla:
    def test_vanilla_matches_raw_pipeline(self, dit_model):
        pipeline = ExionPipeline(dit_model, ExionConfig.for_model("dit"))
        vanilla = pipeline.generate_vanilla(seed=2, class_label=3)
        raw = dit_model.make_pipeline().generate(seed=2, class_label=3)
        np.testing.assert_array_equal(vanilla.sample, raw.sample)

    def test_vanilla_stats_empty(self, dit_model):
        pipeline = ExionPipeline(dit_model, ExionConfig.for_model("dit"))
        result = pipeline.generate_vanilla(seed=2)
        assert result.stats.dense_iterations == 0
        assert not result.stats.ffn_sparsities


class TestOptimizedRun:
    def test_base_config_equals_vanilla(self, dit_model):
        cfg = ExionConfig.for_model("dit").ablation("base")
        pipeline = ExionPipeline(dit_model, cfg)
        a = pipeline.generate(seed=2, class_label=3)
        b = pipeline.generate_vanilla(seed=2, class_label=3)
        np.testing.assert_array_equal(a.sample, b.sample)

    def test_ffn_sparsity_hits_target(self, dit_model):
        cfg = ExionConfig.for_model("dit").ablation("ffnr")
        result = ExionPipeline(dit_model, cfg).generate(seed=2, class_label=3)
        assert result.stats.ffn_output_sparsity == pytest.approx(0.80, abs=0.03)

    def test_phase_counts(self, dit_model):
        # 9 iterations, N=2 -> dense at 0,3,6 -> 3 dense, 6 sparse.
        cfg = ExionConfig.for_model("dit").ablation("ffnr")
        result = ExionPipeline(dit_model, cfg).generate(seed=2)
        assert result.stats.dense_iterations == 3
        assert result.stats.sparse_iterations == 6

    def test_optimized_close_to_vanilla(self, dit_model):
        cfg = ExionConfig.for_model("dit")
        pipeline = ExionPipeline(dit_model, cfg)
        opt = pipeline.generate(seed=2, class_label=3)
        van = pipeline.generate_vanilla(seed=2, class_label=3)
        assert psnr(van.sample, opt.sample) > 5.0

    def test_ep_records_attention_stats(self, dit_model):
        cfg = ExionConfig.for_model("dit").ablation("ep")
        result = ExionPipeline(dit_model, cfg).generate(seed=2)
        assert result.stats.attention_output_sparsity > 0.5
        assert result.stats.ffn_output_sparsity == 0.0

    def test_collect_masks(self, dit_model):
        cfg = ExionConfig.for_model("dit")
        pipeline = ExionPipeline(dit_model, cfg, collect_masks=True)
        result = pipeline.generate(seed=2)
        assert result.stats.ffn_bitmasks
        assert result.stats.attention_keepmasks

    def test_threshold_table_used(self, dit_model):
        cfg = ExionConfig.for_model("dit").ablation("ffnr")
        table = ThresholdCalibrator(
            target_sparsity=0.8, dense_period=cfg.sparse_iters_n + 1
        ).calibrate(dit_model, seed=2)
        pipeline = ExionPipeline(dit_model, cfg, threshold_table=table)
        result = pipeline.generate(seed=2)
        assert result.stats.ffn_output_sparsity == pytest.approx(0.80, abs=0.05)


class TestQuantizedRun:
    def test_activation_quantization_changes_little(self, dit_model):
        """INT12 activations perturb EP's skip decisions slightly, so the
        trajectory diverges more than pure rounding error — but stays close
        (paper Table I: the +Quant rows track the +EP rows)."""
        cfg = ExionConfig.for_model("dit")
        plain = ExionPipeline(dit_model, cfg).generate(seed=2, class_label=3)
        quant = ExionPipeline(dit_model, cfg, activation_bits=12).generate(
            seed=2, class_label=3
        )
        assert psnr(plain.sample, quant.sample) > 8.0

    def test_wider_activations_are_closer(self, dit_model):
        cfg = ExionConfig.for_model("dit")
        plain = ExionPipeline(dit_model, cfg).generate(seed=2, class_label=3)
        q12 = ExionPipeline(dit_model, cfg, activation_bits=12).generate(
            seed=2, class_label=3
        )
        q16 = ExionPipeline(dit_model, cfg, activation_bits=16).generate(
            seed=2, class_label=3
        )
        assert psnr(plain.sample, q16.sample) > psnr(plain.sample, q12.sample)

    def test_cross_attention_models_run_quantized(self, sd_model):
        cfg = ExionConfig.for_model("stable_diffusion")
        result = ExionPipeline(sd_model, cfg, activation_bits=12).generate(
            seed=2, prompt="a corgi surfing"
        )
        assert np.all(np.isfinite(result.sample))


class TestAllBenchmarks:
    @pytest.mark.parametrize(
        "name", ["mld", "mdm", "edge", "make_an_audio", "videocrafter2"]
    )
    def test_every_model_runs_optimized(self, name):
        from repro.models.zoo import build_model

        model = build_model(name, seed=0, total_iterations=7)
        cfg = ExionConfig.for_model(name)
        result = ExionPipeline(model, cfg).generate(seed=1, prompt="test")
        assert np.all(np.isfinite(result.sample))
        assert result.stats.ffn_output_sparsity > 0.5
