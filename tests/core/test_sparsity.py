"""Unit tests for sparsity statistics."""

import pytest

from repro.core.sparsity import OpCounter, RunStats


class TestOpCounter:
    def test_reduction(self):
        counter = OpCounter()
        counter.add(100, 25)
        assert counter.reduction == 0.75

    def test_zero_dense_is_zero_reduction(self):
        assert OpCounter().reduction == 0.0

    def test_rejects_computed_exceeding_dense(self):
        with pytest.raises(ValueError):
            OpCounter().add(10, 11)

    def test_accumulates(self):
        counter = OpCounter()
        counter.add(100, 50)
        counter.add(100, 0)
        assert counter.reduction == 0.75


class TestRunStats:
    def test_empty_stats_are_zero(self):
        stats = RunStats()
        assert stats.ffn_output_sparsity == 0.0
        assert stats.attention_output_sparsity == 0.0
        assert stats.ffn_ops_reduction == 0.0

    def test_mean_sparsities(self):
        stats = RunStats()
        stats.ffn_sparsities.extend([0.8, 1.0])
        stats.attention_sparsities.extend([0.2, 0.4])
        assert stats.ffn_output_sparsity == pytest.approx(0.9)
        assert stats.attention_output_sparsity == pytest.approx(0.3)

    def test_combined_ffn_reduction(self):
        stats = RunStats()
        stats.ffn_layer1.add(100, 10)
        stats.ffn_layer2.add(100, 30)
        assert stats.ffn_ops_reduction == pytest.approx(0.8)

    def test_summary_keys(self):
        summary = RunStats().summary()
        assert "ffn_output_sparsity" in summary
        assert "q_projection_skip_rate" in summary
        assert "dense_iterations" in summary
