"""Unit + property tests for log-domain arithmetic (LOD / TS-LOD)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.logdomain import (
    approximate,
    decompose_powers,
    leading_one_position,
    lod_approximate,
    log_domain_matmul,
    quantize_symmetric,
    ts_lod_approximate,
)


class TestQuantize:
    def test_roundtrip_small_error(self, rng):
        x = rng.standard_normal((8, 8))
        ints, scale = quantize_symmetric(x, 12)
        assert np.max(np.abs(ints.astype(float) * scale - x)) < scale

    def test_zero_input(self):
        ints, scale = quantize_symmetric(np.zeros((2, 2)), 12)
        assert scale == 1.0
        assert np.all(ints == 0)

    def test_range_respected(self, rng):
        ints, _ = quantize_symmetric(rng.standard_normal((50,)), 8)
        assert np.max(np.abs(ints)) <= 127

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize_symmetric(np.ones(3), 1)


class TestLeadingOne:
    def test_paper_example(self):
        """Fig. 5 (a): 2 -> position 1, 3 -> position 1, 5 -> position 2."""
        np.testing.assert_array_equal(
            leading_one_position(np.array([2, 3, 5])), [1, 1, 2]
        )

    def test_zero_is_minus_one(self):
        assert leading_one_position(np.array([0]))[0] == -1

    def test_negative_uses_magnitude(self):
        assert leading_one_position(np.array([-8]))[0] == 3

    @given(st.integers(1, 2**40))
    @settings(max_examples=100, deadline=None)
    def test_matches_bit_length(self, value):
        assert leading_one_position(np.array([value]))[0] == value.bit_length() - 1


class TestLOD:
    def test_paper_example(self):
        """Fig. 5 (a): 3 -> 2, 5 -> 4 (one-bit approximation)."""
        np.testing.assert_array_equal(lod_approximate(np.array([3, 5])), [2, 4])

    def test_sign_preserved(self):
        np.testing.assert_array_equal(lod_approximate(np.array([-5])), [-4])

    def test_powers_of_two_exact(self):
        x = np.array([1, 2, 4, 8, 1024])
        np.testing.assert_array_equal(lod_approximate(x), x)

    @given(st.integers(-(2**30), 2**30))
    @settings(max_examples=100, deadline=None)
    def test_error_under_half(self, value):
        approx = int(lod_approximate(np.array([value]))[0])
        assert abs(approx - value) <= abs(value) / 2 + 1e-9


class TestTSLOD:
    def test_paper_example(self):
        """Fig. 15: 3 -> 3 exact, 5 -> 5 exact, 13 -> 12 with two bits."""
        np.testing.assert_array_equal(
            ts_lod_approximate(np.array([3, 5, 13])), [3, 5, 12]
        )

    def test_two_bit_values_exact(self):
        x = np.array([3, 5, 6, 9, 10, 12, 96])
        np.testing.assert_array_equal(ts_lod_approximate(x), x)

    @given(st.integers(-(2**30), 2**30))
    @settings(max_examples=100, deadline=None)
    def test_strictly_better_than_lod(self, value):
        x = np.array([value])
        lod_err = abs(int(lod_approximate(x)[0]) - value)
        ts_err = abs(int(ts_lod_approximate(x)[0]) - value)
        assert ts_err <= lod_err

    @given(st.integers(-(2**30), 2**30))
    @settings(max_examples=100, deadline=None)
    def test_error_under_quarter(self, value):
        approx = int(ts_lod_approximate(np.array([value]))[0])
        assert abs(approx - value) <= abs(value) / 4 + 1e-9

    def test_exact_mode_is_identity(self):
        x = np.array([17, -23])
        np.testing.assert_array_equal(approximate(x, "exact"), x)

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            approximate(np.array([1]), "triple")


class TestDecomposePowers:
    def test_example(self):
        assert decompose_powers(13, 2) == [3, 2]  # 8 + 4

    def test_single_term(self):
        assert decompose_powers(13, 1) == [3]

    def test_zero(self):
        assert decompose_powers(0) == []

    def test_negative_uses_magnitude(self):
        assert decompose_powers(-6, 2) == [2, 1]

    @given(st.integers(1, 2**30), st.integers(1, 4))
    @settings(max_examples=100, deadline=None)
    def test_reconstruction_lower_bound(self, value, terms):
        positions = decompose_powers(value, terms)
        recon = sum(1 << p for p in positions)
        assert recon <= value
        assert positions == sorted(positions, reverse=True)


class TestLogDomainMatmul:
    def test_exact_mode_close_to_float(self, rng):
        a = rng.standard_normal((6, 8))
        b = rng.standard_normal((8, 4))
        out = log_domain_matmul(a, b, mode="exact", bits=14)
        np.testing.assert_allclose(out, a @ b, atol=0.05)

    def test_ts_lod_more_accurate_than_lod(self, rng):
        a = rng.standard_normal((16, 32))
        b = rng.standard_normal((32, 16))
        exact = a @ b
        err_lod = np.abs(log_domain_matmul(a, b, "lod") - exact).mean()
        err_ts = np.abs(log_domain_matmul(a, b, "ts_lod") - exact).mean()
        assert err_ts < err_lod

    def test_preserves_ranking_mostly(self, rng):
        """Predicted scores must preserve the argmax most of the time —
        the property EP's top-k selection relies on."""
        a = rng.standard_normal((32, 16))
        b = rng.standard_normal((16, 32))
        exact = a @ b
        pred = log_domain_matmul(a, b, "ts_lod")
        agreement = np.mean(exact.argmax(axis=1) == pred.argmax(axis=1))
        assert agreement > 0.8
