"""Unit tests for threshold determination."""

import numpy as np
import pytest

from repro.core.thresholds import (
    ThresholdCalibrator,
    ThresholdTable,
    quantile_threshold,
)
from repro.models.zoo import build_model


class TestQuantileThreshold:
    def test_hits_target_sparsity(self, rng):
        values = rng.standard_normal(10000)
        th = quantile_threshold(values, 0.9)
        assert np.mean(np.abs(values) <= th) == pytest.approx(0.9, abs=0.01)

    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            quantile_threshold(np.ones(4), -0.1)


class TestThresholdTable:
    def test_set_get_exact(self):
        table = ThresholdTable(target_sparsity=0.9)
        table.set(0, 1, 0.5)
        assert table.get(0, 1) == 0.5

    def test_falls_back_to_earlier_dense_index(self):
        table = ThresholdTable(target_sparsity=0.9)
        table.set(0, 1, 0.5)
        table.set(2, 1, 0.7)
        assert table.get(1, 1) == 0.5
        assert table.get(5, 1) == 0.7

    def test_missing_block_returns_none(self):
        table = ThresholdTable(target_sparsity=0.9)
        table.set(0, 1, 0.5)
        assert table.get(0, 2) is None

    def test_len(self):
        table = ThresholdTable(target_sparsity=0.9)
        table.set(0, 0, 0.1)
        table.set(0, 1, 0.2)
        assert len(table) == 2


class TestCalibrator:
    def test_builds_table_for_every_dense_iteration_and_block(self):
        model = build_model("dit", seed=0, total_iterations=6)
        calib = ThresholdCalibrator(target_sparsity=0.8, dense_period=3)
        table = calib.calibrate(model, seed=1)
        # 6 iterations, period 3 -> dense at 0 and 3 -> 2 dense indices.
        assert len(table) == 2 * model.network.depth

    def test_thresholds_positive(self):
        model = build_model("dit", seed=0, total_iterations=3)
        table = ThresholdCalibrator(0.8, 3).calibrate(model, seed=1)
        assert all(v > 0 for v in table.values.values())

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            ThresholdCalibrator(0.8, 0)
