"""Unit tests for ExionConfig."""

import pytest

from repro.core.config import ExionConfig


class TestValidation:
    def test_defaults_valid(self):
        ExionConfig()

    def test_rejects_negative_sparse_n(self):
        with pytest.raises(ValueError):
            ExionConfig(sparse_iters_n=-1)

    def test_rejects_bad_target_sparsity(self):
        with pytest.raises(ValueError):
            ExionConfig(ffn_target_sparsity=1.0)

    def test_rejects_bad_topk(self):
        with pytest.raises(ValueError):
            ExionConfig(top_k_ratio=0.0)
        with pytest.raises(ValueError):
            ExionConfig(top_k_ratio=1.5)

    def test_rejects_negative_qth(self):
        with pytest.raises(ValueError):
            ExionConfig(q_threshold=-0.1)

    def test_rejects_unknown_lod_mode(self):
        with pytest.raises(ValueError):
            ExionConfig(lod_mode="three_step")

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            ExionConfig(prediction_bits=1)


class TestForModel:
    def test_pulls_table1_values(self):
        cfg = ExionConfig.for_model("dit")
        assert cfg.sparse_iters_n == 2
        assert cfg.ffn_target_sparsity == 0.80
        assert cfg.q_threshold == 0.15
        assert cfg.top_k_ratio == 0.05

    def test_lod_mode_override(self):
        assert ExionConfig.for_model("dit", lod_mode="lod").lod_mode == "lod"

    def test_disable_flags(self):
        cfg = ExionConfig.for_model("mld", enable_ffn_reuse=False)
        assert not cfg.enable_ffn_reuse
        assert cfg.enable_eager_prediction


class TestAblation:
    @pytest.mark.parametrize(
        "which,ffnr,ep",
        [
            ("base", False, False),
            ("ep", False, True),
            ("ffnr", True, False),
            ("all", True, True),
        ],
    )
    def test_variants(self, which, ffnr, ep):
        cfg = ExionConfig.for_model("dit").ablation(which)
        assert cfg.enable_ffn_reuse is ffnr
        assert cfg.enable_eager_prediction is ep

    def test_preserves_other_fields(self):
        cfg = ExionConfig.for_model("dit").ablation("base")
        assert cfg.sparse_iters_n == 2
        assert cfg.top_k_ratio == 0.05

    def test_unknown_ablation(self):
        with pytest.raises(ValueError, match="base/ep/ffnr/all"):
            ExionConfig().ablation("everything")
