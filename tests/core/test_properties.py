"""Cross-module property-based invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import ExionConfig
from repro.core.eager_prediction import EagerPredictor
from repro.core.ffn_reuse import FFNReuse, schedule_phases
from repro.core.sparsity import RunStats
from repro.models.ffn import FeedForward
from repro.quant.quantize import fake_quantize


class TestScheduleProperties:
    @given(st.integers(0, 200), st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_schedule_density(self, total, n):
        """Dense iterations appear exactly every N+1 steps from step 0."""
        phases = schedule_phases(total, n)
        assert len(phases) == total
        dense = [i for i, p in enumerate(phases) if p]
        assert dense == list(range(0, total, n + 1))

    @given(st.integers(1, 200), st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_first_iteration_always_dense(self, total, n):
        assert schedule_phases(total, n)[0] is True


class TestFFNReuseProperties:
    @given(st.floats(0.0, 0.98), st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_sparse_iteration_error_bounded_by_drift(self, target, seed):
        """The sparse-iteration output error is bounded: for zero input
        drift, the reused output equals the exact output on the recomputed
        positions and equals the dense output elsewhere."""
        rng = np.random.default_rng(seed)
        ffn = FeedForward(4, 8, rng)
        mgr = FFNReuse(
            ExionConfig(sparse_iters_n=1, ffn_target_sparsity=target),
            num_blocks=1,
        )
        x = rng.standard_normal((3, 4))
        mgr.begin_iteration(0)
        dense_out, _ = mgr.executor_for_block(0)(ffn, x)
        mgr.begin_iteration(1)
        sparse_out, _ = mgr.executor_for_block(0)(ffn, x)
        # Same input: reuse is exact regardless of threshold.
        np.testing.assert_allclose(sparse_out, dense_out, atol=1e-9)

    @given(st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_sparsity_statistic_in_range(self, seed):
        rng = np.random.default_rng(seed)
        ffn = FeedForward(4, 8, rng)
        stats = RunStats()
        mgr = FFNReuse(
            ExionConfig(sparse_iters_n=2, ffn_target_sparsity=0.7),
            num_blocks=1, stats=stats,
        )
        for i in range(3):
            mgr.begin_iteration(i)
            mgr.executor_for_block(0)(ffn, rng.standard_normal((3, 4)))
        for s in stats.ffn_sparsities:
            assert 0.0 <= s <= 1.0
        assert 0.0 <= stats.ffn_ops_reduction <= 1.0


class TestEPProperties:
    @given(
        st.integers(2, 12),
        st.floats(0.05, 1.0),
        st.integers(0, 100_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_keep_counts_and_sparsity_consistent(self, tk, k_ratio, seed):
        rng = np.random.default_rng(seed)
        predictor = EagerPredictor(
            ExionConfig(top_k_ratio=k_ratio, q_threshold=1e12)
        )
        scores = rng.standard_normal((1, 4, tk))
        (decision,) = predictor.decide(scores)
        keep_count = max(1, int(np.ceil(k_ratio * tk)))
        assert np.all(decision.keep.sum(axis=1) == min(keep_count, tk))
        sparsity = decision.skipped_elements / decision.keep.size
        assert abs(sparsity - (1 - min(keep_count, tk) / tk)) < 1e-9

    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_dominance_monotone_in_threshold(self, seed):
        """Lowering q_th can only collapse more rows."""
        rng = np.random.default_rng(seed)
        scores = rng.standard_normal((1, 6, 6)) * 2
        loose = EagerPredictor(ExionConfig(q_threshold=0.1, top_k_ratio=0.5))
        tight = EagerPredictor(ExionConfig(q_threshold=2.0, top_k_ratio=0.5))
        (d_loose,) = loose.decide(scores)
        (d_tight,) = tight.decide(scores)
        assert d_loose.one_hot_rows.sum() >= d_tight.one_hot_rows.sum()


class TestQuantProperties:
    @given(st.integers(2, 16), st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_fake_quant_bounded_error(self, bits, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(64) * rng.uniform(0.1, 100)
        q = fake_quantize(x, bits)
        max_abs = np.max(np.abs(x))
        lsb = max_abs / ((1 << (bits - 1)) - 1)
        assert np.max(np.abs(q - x)) <= lsb / 2 + 1e-12

    @given(st.integers(2, 16))
    @settings(max_examples=20, deadline=None)
    def test_fake_quant_preserves_sign(self, bits):
        x = np.array([-3.0, -0.5, 0.0, 0.5, 3.0])
        q = fake_quantize(x, bits)
        assert np.all(np.sign(q) * np.sign(x) >= 0)
