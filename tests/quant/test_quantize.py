"""Unit tests for post-training quantization."""

import numpy as np
import pytest

from repro.models.zoo import build_model
from repro.quant.quantize import (
    MMUL_BITS,
    QuantSpec,
    apply_ptq,
    dequantize,
    fake_quantize,
    quantization_error,
    quantize,
)


class TestQuantize:
    def test_roundtrip_within_half_lsb(self, rng):
        x = rng.standard_normal((16, 16))
        ints, spec = quantize(x, 12)
        recon = dequantize(ints, spec)
        assert np.max(np.abs(recon - x)) <= spec.scale / 2 + 1e-12

    def test_range_clipped(self, rng):
        ints, spec = quantize(rng.standard_normal(100), 8)
        assert np.max(np.abs(ints)) <= spec.qmax

    def test_zero_tensor(self):
        ints, spec = quantize(np.zeros((4,)), 12)
        assert spec.scale == 1.0
        np.testing.assert_array_equal(ints, 0)

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            quantize(np.ones(4), 1)

    def test_fake_quantize_idempotent(self, rng):
        x = rng.standard_normal((8, 8))
        once = fake_quantize(x, 12)
        twice = fake_quantize(once, 12)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    def test_more_bits_less_error(self, rng):
        x = rng.standard_normal((32, 32))
        assert quantization_error(x, 12) < quantization_error(x, 8)

    def test_quant_spec_qmax(self):
        assert QuantSpec(bits=12, scale=1.0).qmax == 2047
        assert MMUL_BITS == 12


class TestApplyPTQ:
    def test_weights_land_on_grid(self):
        model = build_model("dit", seed=0, total_iterations=3)
        apply_ptq(model, mmul_bits=12)
        w = model.network.blocks[0].ffn.linear1.weight
        np.testing.assert_allclose(w, fake_quantize(w, 12), atol=1e-12)

    def test_covers_resblocks(self):
        model = build_model("stable_diffusion", seed=0, total_iterations=3)
        apply_ptq(model)
        w = model.network.resblocks[0].conv1.weight
        np.testing.assert_allclose(w, fake_quantize(w, 12), atol=1e-12)

    def test_quantized_model_output_close(self):
        plain = build_model("dit", seed=0, total_iterations=5)
        quant = build_model("dit", seed=0, total_iterations=5)
        apply_ptq(quant)
        a = plain.make_pipeline().generate(seed=1, class_label=2)
        b = quant.make_pipeline().generate(seed=1, class_label=2)
        from repro.workloads.metrics import psnr

        assert psnr(a.sample, b.sample) > 25.0
