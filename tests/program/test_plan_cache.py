"""PlanCache parity: cached artifacts must be byte-equal to the cold path.

The cache is only admissible if it is invisible — every tier (plan,
compiled, pricing, profile) must hand back exactly what the uncached
pipeline would have produced, for every zoo model, every Table II
accelerator configuration and every ablation arm. These tests pin that
contract, plus the operational properties: disk-tier corruption
recovery, concurrent readers, defensive copies, global-cache isolation
and metrics publication.
"""

import dataclasses
import json
import threading

import pytest

from repro.core.config import ExionConfig
from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import estimate_profile
from repro.program import (
    PlanCache,
    compile_plan,
    fresh_plan_cache,
    lower_plan,
    plan_json,
)
from repro.program.cache import TIERS, compiled_plan_for, get_plan_cache
from repro.workloads.specs import ALL_MODEL_ORDER, get_spec

ACCELERATORS = {
    "exion4": ExionAccelerator.exion4,
    "exion24": ExionAccelerator.exion24,
    "exion42": ExionAccelerator.exion42,
}
ABLATIONS = ("base", "ep", "ffnr", "all")
ABLATION_FLAGS = {
    "base": (False, False),
    "ep": (False, True),
    "ffnr": (True, False),
    "all": (True, True),
}


@pytest.fixture()
def cache():
    with fresh_plan_cache() as fresh:
        yield fresh


class TestPlanTierParity:
    @pytest.mark.parametrize("model", ALL_MODEL_ORDER)
    @pytest.mark.parametrize("ablation", ABLATIONS)
    def test_plan_byte_equal_to_cold_lowering(self, cache, model, ablation):
        spec = get_spec(model)
        ffnr, ep = ABLATION_FLAGS[ablation]
        cold = lower_plan(
            spec, enable_ffn_reuse=ffnr, enable_eager_prediction=ep
        )
        warm = cache.plan(
            spec, enable_ffn_reuse=ffnr, enable_eager_prediction=ep
        )
        assert plan_json(warm) == plan_json(cold)
        assert warm == cold

    @pytest.mark.parametrize("model", ALL_MODEL_ORDER)
    def test_config_keyed_plan_matches_cold(self, cache, model):
        spec = get_spec(model)
        config = ExionConfig.for_model(model)
        cold = lower_plan(spec, config=config, scale="sim", iterations=8)
        warm = cache.plan(spec, config=config, scale="sim", iterations=8)
        assert plan_json(warm) == plan_json(cold)

    def test_second_lookup_is_interned(self, cache):
        spec = get_spec("dit")
        first = cache.plan(spec)
        second = cache.plan(spec)
        assert first is second
        assert cache.tier_hits["plan"] == 1
        assert cache.tier_misses["plan"] == 1

    def test_distinct_keys_do_not_collide(self, cache):
        spec = get_spec("dit")
        base = cache.plan(spec)
        assert cache.plan(spec, batch=4) is not base
        assert cache.plan(spec, iterations=8) is not base
        assert cache.plan(spec, scale="sim") is not base
        assert cache.plan(spec, enable_ffn_reuse=False) is not base
        knobbed = dataclasses.replace(spec, sparse_iters_n=spec.sparse_iters_n + 1)
        assert cache.plan(knobbed) is not base


class TestCompiledTierParity:
    @pytest.mark.parametrize("model", ALL_MODEL_ORDER)
    def test_compiled_matches_cold_compile(self, cache, model):
        spec = get_spec(model)
        config = ExionConfig.for_model(model)
        cold = compile_plan(lower_plan(spec, config=config, scale="sim"))
        warm = cache.compiled(spec, config=config)
        assert warm == cold

    def test_compiled_shares_the_plan_tier(self, cache):
        spec = get_spec("dit")
        compiled = cache.compiled(spec)
        # the compiled lookup missed, then populated the plan tier too
        assert cache.tier_misses["compiled"] == 1
        assert cache.tier_misses["plan"] == 1
        again = cache.compiled(spec)
        assert again is compiled
        assert cache.tier_hits["compiled"] == 1

    def test_module_helper_uses_global_cache(self):
        with fresh_plan_cache() as fresh:
            spec = get_spec("dit")
            first = compiled_plan_for(spec)
            assert compiled_plan_for(spec) is first
            assert fresh.tier_hits["compiled"] == 1
            assert get_plan_cache() is fresh


class TestPricingTierParity:
    @pytest.mark.parametrize("model", ALL_MODEL_ORDER)
    @pytest.mark.parametrize("accelerator", sorted(ACCELERATORS))
    @pytest.mark.parametrize("ablation", ABLATIONS)
    def test_price_equals_cold_simulate_plan(
        self, cache, model, accelerator, ablation
    ):
        spec = get_spec(model)
        acc = ACCELERATORS[accelerator]()
        ffnr, ep = ABLATION_FLAGS[ablation]
        profile = cache.profile(spec)
        plan = cache.plan(
            spec, enable_ffn_reuse=ffnr, enable_eager_prediction=ep
        )
        cold = acc.simulate_plan(plan, profile)
        warm = cache.price(acc, plan, profile)
        rewarm = cache.price(acc, plan, profile)
        assert warm == cold
        assert rewarm == cold

    def test_cached_report_is_a_defensive_copy(self, cache):
        spec = get_spec("dit")
        acc = ExionAccelerator.exion24()
        profile = cache.profile(spec)
        plan = cache.plan(spec)
        first = cache.price(acc, plan, profile)
        first.latency_s = -1.0
        first.energy_breakdown_j.clear()
        second = cache.price(acc, plan, profile)
        assert second.latency_s != -1.0
        assert second.energy_breakdown_j
        assert second is not first

    def test_accelerators_do_not_collide(self, cache):
        spec = get_spec("dit")
        profile = cache.profile(spec)
        plan = cache.plan(spec)
        small = cache.price(ExionAccelerator.exion4(), plan, profile)
        large = cache.price(ExionAccelerator.exion42(), plan, profile)
        assert small.latency_s != large.latency_s
        assert cache.tier_misses["pricing"] == 2


class TestProfileTierParity:
    @pytest.mark.parametrize("model", ALL_MODEL_ORDER)
    def test_profile_equals_cold_estimate(self, cache, model):
        spec = get_spec(model)
        cold = estimate_profile(spec)
        warm = cache.profile(spec)
        assert warm == cold

    def test_profile_copy_protects_the_intern(self, cache):
        spec = get_spec("dit")
        first = cache.profile(spec)
        first.ffn_sparsity = 0.0
        second = cache.profile(spec)
        assert second.ffn_sparsity != 0.0
        assert second == estimate_profile(spec)

    def test_seed_and_kwargs_key_the_profile(self, cache):
        spec = get_spec("dit")
        cache.profile(spec)
        cache.profile(spec, seed=1)
        cache.profile(spec, sample_rows=32)
        assert cache.tier_misses["profile"] == 3
        cache.profile(spec)
        assert cache.tier_hits["profile"] == 1


class TestDiskTier:
    def test_round_trip_across_cache_instances(self, tmp_path):
        spec = get_spec("dit")
        writer = PlanCache(cache_dir=str(tmp_path))
        plan = writer.plan(spec)
        profile = writer.profile(spec)
        acc = ExionAccelerator.exion24()
        report = writer.price(acc, plan, profile)

        reader = PlanCache(cache_dir=str(tmp_path))
        assert plan_json(reader.plan(spec)) == plan_json(plan)
        assert reader.profile(spec) == profile
        assert reader.price(acc, reader.plan(spec), profile) == report
        assert reader.disk_hits >= 3
        # the reads never re-ran lowering/synthesis/pricing
        assert reader.tier_misses["plan"] == 1  # memory miss, disk hit

    def test_corrupt_entries_recover_transparently(self, tmp_path):
        spec = get_spec("dit")
        writer = PlanCache(cache_dir=str(tmp_path))
        plan = writer.plan(spec)
        entries = sorted(tmp_path.rglob("*.json"))
        assert entries
        for entry in entries:
            entry.write_text("{torn write", encoding="utf-8")

        reader = PlanCache(cache_dir=str(tmp_path))
        recovered = reader.plan(spec)
        assert plan_json(recovered) == plan_json(plan)
        assert reader.disk_misses >= 1
        # the recompute rewrote a valid entry
        repaired = PlanCache(cache_dir=str(tmp_path))
        assert plan_json(repaired.plan(spec)) == plan_json(plan)
        assert repaired.disk_hits == 1

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        spec = get_spec("dit")
        writer = PlanCache(cache_dir=str(tmp_path))
        plan = writer.plan(spec)
        for entry in tmp_path.rglob("*.json"):
            entry.write_text(
                json.dumps({"key": {}, "payload": {"bogus": 1}}),
                encoding="utf-8",
            )
        reader = PlanCache(cache_dir=str(tmp_path))
        assert plan_json(reader.plan(spec)) == plan_json(plan)

    def test_memory_only_without_cache_dir(self, cache, tmp_path):
        cache.plan(get_spec("dit"))
        assert not list(tmp_path.rglob("*.json"))
        assert cache.disk_hits == cache.disk_misses == 0


class TestConcurrentReaders:
    def test_threads_share_one_interned_artifact(self, cache):
        spec = get_spec("dit")
        acc = ExionAccelerator.exion24()
        results, errors = [], []
        barrier = threading.Barrier(8)

        def worker():
            try:
                barrier.wait()
                for _ in range(5):
                    plan = cache.plan(spec)
                    profile = cache.profile(spec)
                    report = cache.price(acc, plan, profile)
                    results.append((plan, plan_json(plan), report))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 40
        canonical = results[0][1]
        assert all(r[1] == canonical for r in results)
        # exactly one plan object was interned, shared by every thread
        assert len({id(r[0]) for r in results}) == 1
        assert all(r[2] == results[0][2] for r in results)
        assert cache.stats()["plans"] == 1
        assert cache.stats()["pricings"] == 1

    def test_concurrent_disk_writers_do_not_corrupt(self, tmp_path):
        spec = get_spec("dit")
        caches = [PlanCache(cache_dir=str(tmp_path)) for _ in range(4)]
        barrier = threading.Barrier(4)
        plans = []

        def worker(cache):
            barrier.wait()
            plans.append(plan_json(cache.plan(spec)))

        threads = [
            threading.Thread(target=worker, args=(c,)) for c in caches
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(plans)) == 1
        # every entry on disk parses cleanly after the write race
        for entry in tmp_path.rglob("*.json"):
            json.loads(entry.read_text(encoding="utf-8"))


class TestGlobalCacheLifecycle:
    def test_fresh_plan_cache_isolates_and_restores(self):
        outer = get_plan_cache()
        with fresh_plan_cache() as inner:
            assert get_plan_cache() is inner
            assert inner is not outer
            inner.plan(get_spec("dit"))
            assert inner.stats()["plans"] == 1
        assert get_plan_cache() is outer

    def test_clear_keeps_counters(self):
        with fresh_plan_cache() as cache:
            cache.plan(get_spec("dit"))
            cache.plan(get_spec("dit"))
            cache.clear()
            stats = cache.stats()
            assert stats["plans"] == 0
            assert stats["plan_hits"] == 1
            assert stats["plan_misses"] == 1

    def test_stats_keys_sorted(self, cache):
        stats = cache.stats()
        assert list(stats) == sorted(stats)
        for tier in TIERS:
            assert f"{tier}_hits" in stats
            assert f"{tier}_misses" in stats


class TestMetricsPublication:
    def _series(self, registry, name):
        for family in registry.snapshot()["families"]:
            if family["name"] == name:
                return {
                    tuple(sorted(s["labels"].items())): s["value"]
                    for s in family["series"]
                }
        return {}

    def test_counters_and_gauges_published(self, cache):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        spec = get_spec("dit")
        cache.plan(spec)
        cache.plan(spec)
        cache.publish_metrics(registry)
        lookups = self._series(registry, "repro_plan_cache_lookups_total")
        assert lookups[(("outcome", "hit"), ("tier", "plan"))] == 1.0
        assert lookups[(("outcome", "miss"), ("tier", "plan"))] == 1.0
        entries = self._series(registry, "repro_plan_cache_entries")
        assert entries[(("tier", "plan"),)] == 1.0

    def test_republication_adds_only_the_delta(self, cache):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        spec = get_spec("dit")
        cache.plan(spec)
        cache.publish_metrics(registry)
        cache.publish_metrics(registry)  # no new lookups: no double count
        lookups = self._series(registry, "repro_plan_cache_lookups_total")
        assert lookups[(("outcome", "miss"), ("tier", "plan"))] == 1.0
        cache.plan(spec)
        cache.publish_metrics(registry)
        lookups = self._series(registry, "repro_plan_cache_lookups_total")
        assert lookups[(("outcome", "hit"), ("tier", "plan"))] == 1.0
