"""The extended specs run on every backend with zero special-casing.

These tests are the scenario payoff of the lowering pipeline: the
video-DiT spec (temporal attention) and the SDXL-class UNet were
registered as plain ``ModelSpec`` entries, and every layer below — the
three EXION configurations, the GPU/Cambricon-D/Delta-DiT baselines,
the explore objectives and the cluster simulator — picks them up
through the single lowering, with no backend-specific code anywhere.
"""

import pytest

from repro.baselines.cambricon_d import CambriconDModel
from repro.baselines.delta_dit import DeltaDiTPipeline
from repro.baselines.gpu import GPUModel
from repro.baselines.specs import SERVER_GPU
from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import estimate_profile
from repro.workloads.specs import EXTENDED_ORDER, get_spec


@pytest.fixture(scope="module")
def profiles():
    return {
        name: estimate_profile(get_spec(name), seed=0)
        for name in EXTENDED_ORDER
    }


class TestExionConfigurations:
    @pytest.mark.parametrize("model", EXTENDED_ORDER)
    def test_all_table2_configs(self, model, profiles):
        spec = get_spec(model)
        for factory in (ExionAccelerator.exion4, ExionAccelerator.exion24,
                        ExionAccelerator.exion42):
            report = factory().simulate(spec, profiles[model], iterations=6)
            assert report.latency_s > 0
            assert report.energy_j > 0
            assert 0.0 < report.ops_reduction < 1.0
            assert set(report.op_class_energy_j) >= {"qkv", "attention"}

    @pytest.mark.parametrize("model", EXTENDED_ORDER)
    def test_sparsity_still_pays(self, model, profiles):
        """The All ablation beats Base on the new models too."""
        spec = get_spec(model)
        acc = ExionAccelerator.exion24()
        base = acc.simulate(spec, profiles[model],
                            enable_ffn_reuse=False,
                            enable_eager_prediction=False, iterations=6)
        full = acc.simulate(spec, profiles[model], iterations=6)
        assert full.latency_s < base.latency_s
        assert full.computed_ops < base.computed_ops


class TestBaselines:
    @pytest.mark.parametrize("model", EXTENDED_ORDER)
    def test_gpu_and_cambricon(self, model):
        spec = get_spec(model)
        gpu = GPUModel(SERVER_GPU).simulate(spec, iterations=6)
        assert gpu.latency_s > 0
        cd = CambriconDModel().simulate(spec)
        assert cd.speedup_vs_gpu >= 1.0

    def test_delta_dit_on_video_dit(self):
        """The transformer-only video spec runs under block caching."""
        from repro.models.zoo import build_model

        model = build_model("latte_video_dit", seed=0, total_iterations=4)
        result = DeltaDiTPipeline(model, cache_interval=1).generate(seed=1)
        assert result.blocks_skipped > 0
        assert 0.0 < result.ops_reduction < 1.0

    def test_delta_dit_scope_is_model_shape_not_model_name(self):
        """The UNet spec is out of Delta-DiT's own published scope
        (transformer-only); the rejection keys on network topology, not
        on any per-model special case."""
        from repro.models.zoo import build_model

        model = build_model("sdxl_unet", seed=0, total_iterations=4)
        with pytest.raises(ValueError, match="transformer-only"):
            DeltaDiTPipeline(model)


class TestUpperLayers:
    @pytest.mark.parametrize("model", EXTENDED_ORDER)
    def test_explore_objectives(self, model):
        from repro.explore import PointEvaluator

        evaluator = PointEvaluator(
            objectives=("latency_s", "energy_j", "tops_per_watt"),
            model=model,
            iterations=4,
        )
        values = evaluator({"num_dscs": 24})
        assert all(v > 0 for v in values.values())

    @pytest.mark.parametrize("model", EXTENDED_ORDER)
    def test_cluster_service_pricing(self, model):
        from repro.cluster.replica import ServiceTimeModel

        stm = ServiceTimeModel("exion24", iterations=4)
        b1 = stm.latency_s(model, "all", 1)
        b8 = stm.latency_s(model, "all", 8)
        assert 0 < b1 < b8

    @pytest.mark.parametrize("model", EXTENDED_ORDER)
    def test_cluster_simulation_end_to_end(self, model):
        from repro.cluster import (
            PoissonProcess,
            ServiceTimeModel,
            WorkloadMix,
            build_replicas,
            make_router,
            simulate_cluster,
            synthesize_trace,
        )

        trace = synthesize_trace(
            PoissonProcess(rate_rps=50.0), 8,
            mix=WorkloadMix(models=(model,), ablation="all"), rng=0,
        )
        report = simulate_cluster(
            trace,
            replicas=build_replicas(
                2, service_model=ServiceTimeModel("exion24", iterations=4)
            ),
            router=make_router("jsq"),
        )
        assert report.served == 8

    @pytest.mark.parametrize("model", EXTENDED_ORDER)
    def test_builds_and_generates(self, model):
        """The sim substrate runs the new specs end to end."""
        from repro.core.config import ExionConfig
        from repro.core.pipeline import ExionPipeline
        from repro.models.zoo import build_model

        built = build_model(model, seed=0, total_iterations=4)
        pipeline = ExionPipeline(built, ExionConfig.for_model(model))
        result = pipeline.generate(seed=1)
        assert result.sample.shape == (built.spec.tokens, built.spec.dim)

    @pytest.mark.parametrize("model", EXTENDED_ORDER)
    def test_cli_program_inspection(self, model, capsys):
        from repro.cli import main

        assert main(["program", "--model", model]) == 0
        out = capsys.readouterr().out
        assert "IterationProgram" in out
        assert "plan digest" in out
