"""Unit tests for the single lowering: spec -> IterationProgram."""

import pytest

from repro.program import (
    IterationProgram,
    Op,
    OpKind,
    block_ops,
    lower_plan,
    lower_program,
    spec_block_ops,
)
from repro.program.lower import SIM_CONTEXT_TOKENS
from repro.workloads.specs import ALL_MODEL_ORDER, get_spec


class TestOp:
    def test_macs_and_weight_bytes(self):
        op = Op("x", "qkv", 4, 8, 16, count=2)
        assert op.macs == 4 * 8 * 16 * 2
        assert op.weight_bytes == int(8 * 16 * 1.5 * 2)

    def test_weightless_op(self):
        op = Op("attn_score", "attention", 4, 8, 4, has_weights=False)
        assert op.weight_bytes == 0

    def test_kind_coerced_to_enum(self):
        op = Op("x", "ffn1", 1, 1, 1)
        assert op.kind is OpKind.FFN1
        assert op.kind == "ffn1"

    def test_rejects_bad_dims_and_kind(self):
        with pytest.raises(ValueError):
            Op("x", "qkv", 0, 8, 16)
        with pytest.raises(ValueError):
            Op("x", "conv3d", 1, 1, 1)


class TestBlockOps:
    def test_cross_attention_group(self):
        names = [op.name for op in block_ops(16, 64, 4, 4,
                                             context_tokens=77)]
        assert "xattn_k_proj" in names
        assert "xattn_score" in names

    def test_geglu_doubles_ffn1_columns(self):
        ops = {op.name: op for op in block_ops(16, 64, 4, 4,
                                               activation="geglu")}
        assert ops["ffn_linear1"].c == 2 * 4 * 64

    def test_temporal_attention_factorization(self):
        ops = {op.name: op
               for op in block_ops(64, 64, 4, 4, temporal_frames=8)}
        spatial = 64 // 8
        assert ops["attn_score"].r == spatial
        assert ops["attn_score"].count == 4 * 8  # heads x frames
        assert ops["temporal_attn_score"].r == 8
        assert ops["temporal_attn_score"].count == 4 * spatial
        assert ops["temporal_q_proj"].kind is OpKind.QKV
        assert not ops["temporal_attn_av"].has_weights
        assert ops["temporal_out_proj"].has_weights

    def test_temporal_validation(self):
        with pytest.raises(ValueError):
            block_ops(65, 64, 4, 4, temporal_frames=8)  # not divisible
        with pytest.raises(ValueError):
            block_ops(8, 64, 4, 4, temporal_frames=8)  # 1 spatial token

    def test_heads_must_divide_dim(self):
        with pytest.raises(ValueError):
            block_ops(16, 65, 4, 4)


class TestLowerProgram:
    def test_depth_multiplies_counts(self):
        program = lower_program(get_spec("dit"))
        ops = {op.name: op for op in program.ops}
        assert ops["q_proj"].count == get_spec("dit").paper_depth

    def test_pure_transformer_has_no_etc(self):
        macs = lower_program(get_spec("dit")).macs_by_kind()
        assert macs["etc"] == 0

    def test_etc_matches_transformer_share(self):
        sd = get_spec("stable_diffusion")
        macs = lower_program(sd).macs_by_kind()
        transformer = macs["qkv"] + macs["attention"] + macs["ffn"]
        share = transformer / (transformer + macs["etc"])
        assert share == pytest.approx(sd.paper_transformer_share, abs=0.02)

    def test_temporal_spec_emits_temporal_ops(self):
        program = lower_program(get_spec("latte_video_dit"))
        names = {op.name for op in program.ops}
        assert "temporal_attn_score" in names
        assert "temporal_out_proj" in names
        assert program.temporal_frames == 16

    def test_sim_scale_uses_runnable_dims(self):
        spec = get_spec("stable_diffusion")
        program = lower_program(spec, scale="sim")
        assert program.tokens == spec.tokens
        assert program.dim == spec.dim
        ops = {op.name: op for op in program.ops}
        assert ops["xattn_k_proj"].r == SIM_CONTEXT_TOKENS

    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError):
            lower_program(get_spec("dit"), scale="nano")
        with pytest.raises(ValueError):
            spec_block_ops(get_spec("dit"), scale="nano")

    def test_every_model_lowers(self):
        for name in ALL_MODEL_ORDER:
            program = lower_program(get_spec(name))
            assert isinstance(program, IterationProgram)
            assert program.total_macs > 0
            assert program.weight_bytes > 0
            assert all(isinstance(op.kind, OpKind) for op in program.ops)


class TestLowerPlan:
    def test_phase_cadence_matches_spec(self):
        spec = get_spec("dit")  # N=2: dense every 3rd iteration
        plan = lower_plan(spec, iterations=9)
        assert [s.is_dense for s in plan.steps] == [
            True, False, False, True, False, False, True, False, False,
        ]
        assert plan.dense_iterations == 3
        assert plan.sparse_iterations == 6

    def test_disabled_ffn_reuse_is_all_dense(self):
        plan = lower_plan(get_spec("dit"), enable_ffn_reuse=False,
                          iterations=5)
        assert all(s.is_dense for s in plan.steps)

    def test_residency_annotation(self):
        plan = lower_plan(get_spec("dit"), iterations=4)
        assert plan.steps[0].weight_fetch == "cold"
        assert all(s.weight_fetch == "resident" for s in plan.steps[1:])

    def test_config_supplies_flags_and_bits(self):
        from repro.core.config import ExionConfig

        config = ExionConfig.for_model("dit").ablation("base")
        plan = lower_plan(get_spec("dit"), config=config, iterations=4)
        assert not plan.enable_ffn_reuse
        assert not plan.enable_eager_prediction
        assert plan.prediction_bits == config.prediction_bits

    def test_config_n_shapes_the_schedule(self):
        """A config whose FFN-Reuse period differs from the spec's wins:
        the priced cadence is the one the pipeline would execute."""
        from dataclasses import replace as dc_replace

        from repro.core.config import ExionConfig

        spec = get_spec("dit")  # Table I N=2
        config = dc_replace(ExionConfig.for_model("dit"), sparse_iters_n=9)
        plan = lower_plan(spec, config=config, iterations=20)
        assert plan.sparse_iters_n == 9
        assert plan.dense_iterations == 2  # iterations 0 and 10
        assert plan.steps[10].is_dense

    def test_dense_equivalent_macs_scale_with_batch(self):
        spec = get_spec("mld")
        b1 = lower_plan(spec, iterations=5, batch=1)
        b8 = lower_plan(spec, iterations=5, batch=8)
        assert b8.dense_equivalent_macs == 8 * b1.dense_equivalent_macs

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            lower_plan(get_spec("mld"), batch=0)


class TestMappingFacade:
    def test_shim_matches_program(self):
        """repro.hw.mapping delegates; no second walk can drift."""
        from repro.hw.mapping import iteration_macs, iteration_workloads

        for name in ALL_MODEL_ORDER:
            spec = get_spec(name)
            program = lower_program(spec)
            assert iteration_workloads(spec) == list(program.ops)
            assert iteration_macs(spec) == program.macs_by_kind()

    def test_delta_dit_block_macs_match_network(self):
        """Sim-scale block lowering equals the runnable network's own
        analytic MAC count (what Delta-DiT's accounting relies on)."""
        from repro.models.zoo import build_model

        for name in ("dit", "mdm", "edge"):
            model = build_model(name, seed=0, total_iterations=2)
            block = model.network.blocks[0]
            tokens = model.network.tokens
            spec = model.spec
            lowered = sum(
                op.macs
                for op in block_ops(
                    tokens, spec.dim, spec.num_heads, spec.ffn_mult,
                    activation=spec.activation,
                )
            )
            assert lowered == sum(block.macs(tokens).values())
