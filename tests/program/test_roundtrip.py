"""IR round-trip and canonical-encoding determinism tests."""

import json

from repro.program import (
    lower_plan,
    lower_program,
    plan_digest,
    plan_from_dict,
    plan_json,
    plan_to_dict,
    program_from_dict,
    program_to_dict,
)
from repro.workloads.specs import ALL_MODEL_ORDER, get_spec


class TestRoundTrip:
    def test_program_round_trip(self):
        for name in ALL_MODEL_ORDER:
            program = lower_program(get_spec(name))
            assert program_from_dict(program_to_dict(program)) == program

    def test_plan_round_trip(self):
        for name in ALL_MODEL_ORDER:
            plan = lower_plan(get_spec(name), iterations=7, batch=2)
            assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_round_trip_preserves_canonical_bytes(self):
        plan = lower_plan(get_spec("dit"))
        rebuilt = plan_from_dict(json.loads(plan_json(plan)))
        assert plan_json(rebuilt) == plan_json(plan)


class TestDeterminism:
    def test_independent_lowerings_are_byte_identical(self):
        """Two cold lowerings (cache cleared in between) emit the same
        canonical bytes — the fingerprint the smoke bench gates."""
        spec = get_spec("latte_video_dit")
        first = plan_json(lower_plan(spec))
        lower_program.cache_clear()
        second = plan_json(lower_plan(spec))
        assert first == second

    def test_digest_is_sha256_hex(self):
        digest = plan_digest(lower_plan(get_spec("mld")))
        assert len(digest) == 64
        int(digest, 16)  # raises on a non-hex digest

    def test_canonical_form(self):
        blob = plan_json(lower_plan(get_spec("mdm"), iterations=3))
        assert blob.endswith("\n")
        doc = json.loads(blob)
        recanon = (
            json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
        )
        assert recanon == blob

    def test_different_configs_have_different_digests(self):
        spec = get_spec("dit")
        assert plan_digest(lower_plan(spec)) != plan_digest(
            lower_plan(spec, enable_ffn_reuse=False)
        )
        assert plan_digest(lower_plan(spec, batch=1)) != plan_digest(
            lower_plan(spec, batch=8)
        )

    def test_totals_embedded_in_encoding(self):
        """The canonical doc carries derived totals, so a pricing change
        that alters MAC accounting cannot hide from the digest."""
        plan = lower_plan(get_spec("sdxl_unet"))
        doc = plan_to_dict(plan)
        assert doc["totals"]["dense_equivalent_macs"] == (
            plan.dense_equivalent_macs
        )
        assert doc["program"]["totals"]["macs"] == plan.program.total_macs
