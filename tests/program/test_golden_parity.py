"""Golden parity: the IR path reproduces the pre-refactor numbers.

Two layers of protection against lowering drift:

1. **spec path == plan path** — for every zoo model x every Table II
   configuration x every ablation, pricing through the spec-level
   wrapper and through an explicitly lowered plan must agree on every
   report field, bit for bit.
2. **committed baseline equality** — the latency/energy/TOPS-W numbers
   in ``benchmarks/baseline/BENCH_repro.json`` were captured by the
   pre-refactor walkers; recomputing the same metrics through the IR
   must reproduce them exactly (not within tolerance — equal floats)
   for all three baselines (GPU roofline, Cambricon-D, Delta-DiT's
   compute accounting feeds the ``sw_baselines`` bench) and the EXION
   configurations.
"""

import json
from pathlib import Path

import pytest

from repro.baselines.cambricon_d import CambriconDModel
from repro.baselines.gpu import GPUModel
from repro.baselines.specs import A100, EDGE_GPU, SERVER_GPU
from repro.core.config import ExionConfig
from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import estimate_profile
from repro.program import lower_plan
from repro.workloads.specs import BENCHMARK_ORDER, MODEL_SPECS, get_spec

BASELINE_PATH = (
    Path(__file__).resolve().parents[2]
    / "benchmarks" / "baseline" / "BENCH_repro.json"
)

EDGE_MODELS = ("mld", "mdm", "edge", "make_an_audio")
TABLE2 = {
    "exion4": ExionAccelerator.exion4,
    "exion24": ExionAccelerator.exion24,
    "exion42": ExionAccelerator.exion42,
}
ABLATIONS = ("base", "ep", "ffnr", "all")


@pytest.fixture(scope="module")
def baseline():
    with BASELINE_PATH.open(encoding="utf-8") as fh:
        return json.load(fh)["results"]


@pytest.fixture(scope="module")
def profiles():
    return {
        name: estimate_profile(get_spec(name), seed=0)
        for name in MODEL_SPECS
    }


def _report_fields(report):
    return (
        report.latency_s,
        report.energy_j,
        report.dense_equivalent_ops,
        report.computed_ops,
        report.compute_bound_fraction,
        report.energy_breakdown_j,
    )


class TestSpecPathEqualsPlanPath:
    @pytest.mark.parametrize("model", sorted(MODEL_SPECS))
    @pytest.mark.parametrize("table2", sorted(TABLE2))
    def test_every_model_every_config_every_ablation(
        self, model, table2, profiles
    ):
        spec = get_spec(model)
        acc = TABLE2[table2]()
        for ablation in ABLATIONS:
            config = ExionConfig.for_model(model).ablation(ablation)
            via_spec = acc.simulate(
                spec,
                profiles[model],
                enable_ffn_reuse=config.enable_ffn_reuse,
                enable_eager_prediction=config.enable_eager_prediction,
                iterations=10,
            )
            via_plan = acc.simulate_plan(
                lower_plan(spec, config=config, iterations=10),
                profiles[model],
            )
            assert _report_fields(via_spec) == _report_fields(via_plan)


class TestTimelineParity:
    @pytest.mark.parametrize("model", ("dit", "stable_diffusion"))
    def test_timeline_sums_to_accelerator_report(self, model, profiles):
        """The per-iteration timeline and simulate_plan share one pricing
        substrate; their totals must agree bit for bit."""
        from repro.hw.timeline import simulate_timeline

        spec = get_spec(model)
        acc = ExionAccelerator.exion24()
        report = acc.simulate(spec, profiles[model], iterations=10)
        timeline = simulate_timeline(acc, spec, profiles[model],
                                     iterations=10)
        assert timeline.total_latency_s == report.latency_s
        assert len(timeline.records) == report.iterations


class TestCommittedBaselineParity:
    """IR-derived metrics equal the committed pre-refactor values."""

    def _value(self, baseline, bench, metric):
        return baseline[bench]["metrics"][metric]["value"]

    def test_fig04_op_counts(self, baseline):
        from repro.analysis.opcount import operation_breakdown

        for name in BENCHMARK_ORDER:
            info = operation_breakdown(get_spec(name))
            assert info["total_ops"] == self._value(
                baseline, "fig04_opcount", f"{name}.total_ops"
            )
            assert info["transformer_share"] == self._value(
                baseline, "fig04_opcount", f"{name}.transformer_share"
            )
            assert info["ffn_share_of_transformer"] == self._value(
                baseline, "fig04_opcount",
                f"{name}.ffn_share_of_transformer",
            )

    @pytest.mark.parametrize("batch", (1, 8))
    def test_fig19a_latency_speedups(self, baseline, profiles, batch):
        panels = (
            ("fig19a_latency_edge", ExionAccelerator.exion4(),
             GPUModel(EDGE_GPU), EDGE_MODELS),
            ("fig19a_latency_server", ExionAccelerator.exion24(),
             GPUModel(SERVER_GPU), BENCHMARK_ORDER),
        )
        for bench, acc, gpu, models in panels:
            for name in models:
                spec = get_spec(name)
                speedup = (
                    gpu.simulate(spec, batch=batch).latency_s
                    / acc.simulate(spec, profiles[name],
                                   batch=batch).latency_s
                )
                assert speedup == self._value(
                    baseline, bench, f"b{batch}.{name}.speedup"
                ), (bench, name, batch)

    @pytest.mark.parametrize("batch", (1, 8))
    def test_fig18_efficiency_gains(self, baseline, profiles, batch):
        panels = (
            ("fig18a_edge_efficiency", ExionAccelerator.exion4(),
             GPUModel(EDGE_GPU), EDGE_MODELS),
            ("fig18b_server_efficiency", ExionAccelerator.exion24(),
             GPUModel(SERVER_GPU), BENCHMARK_ORDER),
        )
        for bench, acc, gpu, models in panels:
            for name in models:
                spec = get_spec(name)
                gain = (
                    acc.simulate(spec, profiles[name],
                                 batch=batch).tops_per_watt
                    / gpu.simulate(spec, batch=batch).tops_per_watt
                )
                assert gain == self._value(
                    baseline, bench, f"b{batch}.{name}.gain_all"
                ), (bench, name, batch)

    def test_fig19b_sota_speedups(self, baseline, profiles):
        gpu = GPUModel(A100)
        cd = CambriconDModel()
        ex42 = ExionAccelerator.exion42()
        for name in ("stable_diffusion", "dit"):
            spec = get_spec(name)
            assert cd.simulate(spec).speedup_vs_gpu == self._value(
                baseline, "fig19b_sota", f"{name}.cambricon_d_speedup"
            )
            ex_speedup = (
                gpu.simulate(spec).latency_s
                / ex42.simulate(spec, profiles[name]).latency_s
            )
            assert ex_speedup == self._value(
                baseline, "fig19b_sota", f"{name}.exion42_speedup"
            )

    def test_program_lowering_fingerprints(self, baseline):
        """The committed plan digests re-derive from a cold lowering
        (extended models included: temporal/geglu lowering drift must
        fail tier-1, not just the bench-compare job)."""
        from repro.program import lower_program, plan_digest, plan_json
        from repro.workloads.specs import ALL_MODEL_ORDER

        lower_program.cache_clear()
        for name in ALL_MODEL_ORDER:
            plan = lower_plan(get_spec(name))
            assert len(plan_json(plan)) == self._value(
                baseline, "program_lowering", f"{name}.plan_bytes"
            )
            assert int(plan_digest(plan)[:12], 16) == self._value(
                baseline, "program_lowering", f"{name}.plan_digest48"
            )
