"""Edge cases and failure-injection tests across the library."""

import numpy as np
import pytest

from repro.core.bitmask import Bitmask
from repro.core.config import ExionConfig
from repro.core.conmerge.cvg import conmerge, conmerge_tiled
from repro.core.eager_prediction import EagerPredictor
from repro.core.ffn_reuse import FFNReuse
from repro.core.pipeline import ExionPipeline
from repro.core.sparsity import RunStats
from repro.models.attention import MultiHeadAttention
from repro.models.ffn import FeedForward
from repro.models.zoo import build_model


class TestDegenerateMasks:
    def test_single_row_mask(self, rng):
        mask = Bitmask.random(1, 64, sparsity=0.9, rng=rng)
        result = conmerge(mask)
        expected = {(int(r), int(c)) for r, c in np.argwhere(mask.mask)}
        assert result.element_positions() == expected

    def test_single_column_mask(self, rng):
        mask = Bitmask(rng.random((16, 1)) < 0.3)
        result = conmerge(mask)
        assert result.element_positions() == {
            (int(r), 0) for r in np.flatnonzero(mask.mask[:, 0])
        }

    def test_width_one_blocks(self, rng):
        mask = Bitmask.random(8, 16, sparsity=0.9, rng=rng)
        result = conmerge(mask, width=1)
        expected = {(int(r), int(c)) for r, c in np.argwhere(mask.mask)}
        assert result.element_positions() == expected

    def test_tile_rows_larger_than_mask(self, rng):
        mask = Bitmask.random(5, 32, sparsity=0.8, rng=rng)
        result = conmerge_tiled(mask, tile_rows=16)
        assert len(result.tile_results) == 1

    def test_full_dense_single_element_mask(self):
        mask = Bitmask(np.ones((1, 1), dtype=bool))
        result = conmerge(mask)
        assert result.element_positions() == {(0, 0)}


class TestDegenerateEP:
    def test_single_token_attention(self, rng):
        """One query and one key: the dominance rule collapses trivially."""
        attn = MultiHeadAttention(8, 2, rng)
        config = ExionConfig(top_k_ratio=0.5, q_threshold=0.5)
        predictor = EagerPredictor(config, stats=RunStats())
        x = rng.standard_normal((1, 8))
        out, trace = attn(x, executor=predictor.executor())
        assert out.shape == (1, 8)
        assert np.all(np.isfinite(out))

    def test_constant_scores_no_dominance(self, rng):
        """All-equal predicted scores must never trigger dominance skips."""
        config = ExionConfig(top_k_ratio=0.5, q_threshold=0.1)
        predictor = EagerPredictor(config)
        (decision,) = predictor.decide(np.zeros((1, 4, 4)))
        assert not decision.one_hot_rows.any()

    def test_extreme_activations_finite(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        predictor = EagerPredictor(ExionConfig(), stats=RunStats())
        x = rng.standard_normal((4, 8)) * 1e6
        out, _ = attn(x, executor=predictor.executor())
        assert np.all(np.isfinite(out))


class TestDegenerateFFNReuse:
    def test_zero_threshold_recomputes_everything(self, rng):
        ffn = FeedForward(8, 16, rng)
        config = ExionConfig(sparse_iters_n=1, ffn_threshold=0.0)
        mgr = FFNReuse(config, num_blocks=1)
        x = rng.standard_normal((4, 8))
        mgr.begin_iteration(0)
        mgr.executor_for_block(0)(ffn, x)
        mgr.begin_iteration(1)
        out, trace = mgr.executor_for_block(0)(ffn, x)
        exact, _ = ffn.forward_exact(x)
        # Threshold 0: only exact zeros reuse; output matches exact.
        np.testing.assert_allclose(out, exact, atol=1e-10)

    def test_huge_threshold_reuses_everything(self, rng):
        ffn = FeedForward(8, 16, rng)
        config = ExionConfig(sparse_iters_n=1, ffn_threshold=1e9)
        mgr = FFNReuse(config, num_blocks=1)
        x0 = rng.standard_normal((4, 8))
        mgr.begin_iteration(0)
        dense_out, _ = mgr.executor_for_block(0)(ffn, x0)
        mgr.begin_iteration(1)
        out, trace = mgr.executor_for_block(0)(
            ffn, rng.standard_normal((4, 8))
        )
        np.testing.assert_allclose(out, dense_out, atol=1e-10)
        assert trace.output_sparsity == 1.0

    def test_n_zero_never_reuses(self, rng):
        ffn = FeedForward(8, 16, rng)
        config = ExionConfig(sparse_iters_n=0, ffn_target_sparsity=0.9)
        mgr = FFNReuse(config, num_blocks=1)
        for i in range(3):
            mgr.begin_iteration(i)
            assert mgr.is_dense_iteration
            _, trace = mgr.executor_for_block(0)(
                ffn, np.random.default_rng(i).standard_normal((4, 8))
            )
            assert not trace.reused_from_dense


class TestBatchAPI:
    def test_generate_batch_shapes(self):
        model = build_model("mld", seed=0, total_iterations=5)
        pipeline = ExionPipeline(model, ExionConfig.for_model("mld"))
        samples, results = pipeline.generate_batch(
            [1, 2, 3], prompt="batch test"
        )
        assert samples.shape == (3, 4, 64)
        assert len(results) == 3

    def test_generate_batch_vanilla_matches_single(self):
        model = build_model("mld", seed=0, total_iterations=5)
        pipeline = ExionPipeline(model, ExionConfig.for_model("mld"))
        samples, _ = pipeline.generate_batch([7], prompt="x", vanilla=True)
        single = pipeline.generate_vanilla(seed=7, prompt="x")
        np.testing.assert_array_equal(samples[0], single.sample)

    def test_generate_batch_rejects_empty(self):
        model = build_model("mld", seed=0, total_iterations=5)
        pipeline = ExionPipeline(model, ExionConfig.for_model("mld"))
        with pytest.raises(ValueError):
            pipeline.generate_batch([])
