"""Shape-level assertions of the paper's headline claims.

These tests check *relationships* the paper reports (who wins, orderings,
crossovers), not absolute values — the simulator is not the authors'
testbed, but the shape of every claim should hold.
"""

import numpy as np
import pytest

from repro.baselines.cambricon_d import CambriconDModel
from repro.baselines.gpu import GPUModel
from repro.baselines.specs import A100, EDGE_GPU, SERVER_GPU
from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import estimate_profile
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr
from repro.workloads.specs import BENCHMARK_ORDER, get_spec


@pytest.fixture(scope="module")
def profiles():
    return {
        name: estimate_profile(get_spec(name), seed=0)
        for name in BENCHMARK_ORDER
    }


class TestSection2Claims:
    def test_ffn_layers_dominate_transformer_ops(self):
        """Fig. 4: FFN layers are the main transformer bottleneck."""
        from repro.hw.mapping import iteration_macs

        wins = 0
        for name in BENCHMARK_ORDER:
            macs = iteration_macs(get_spec(name))
            if macs["ffn"] >= max(macs["qkv"], macs["attention"]):
                wins += 1
        assert wins == len(BENCHMARK_ORDER)


class TestSection3Claims:
    def test_inter_iteration_sparsity_70_to_97(self):
        """Fig. 6: FFN-Reuse output sparsity ranges 70-97% by design."""
        for name in BENCHMARK_ORDER:
            spec = get_spec(name)
            assert 0.70 <= spec.target_inter_sparsity <= 0.97

    def test_condensing_strong_for_small_rows_weak_for_large(self):
        """Fig. 8: MLD condenses to ~14%; Stable Diffusion stays ~77%."""
        from repro.core.conmerge.condense import condense
        from repro.workloads.generator import ffn_output_bitmask

        rng = np.random.default_rng(0)
        mld = ffn_output_bitmask(4, 1024, 0.95, dead_col_fraction=0.25, rng=rng)
        sd = ffn_output_bitmask(1024, 512, 0.97, dead_col_fraction=0.25, rng=rng)
        mld_ratio = condense(mld).remaining_ratio
        sd_ratio = condense(sd).remaining_ratio
        assert mld_ratio < 0.30
        assert sd_ratio > 0.60

    def test_merging_rescues_large_row_models(self, profiles):
        """Fig. 9: merging cuts Stable Diffusion's remaining columns from
        ~77% to single digits (with per-tile condensing)."""
        profile = profiles["stable_diffusion"]
        assert profile.ffn_remaining_ratio < 0.45
        assert profile.ffn_remaining_ratio < profile.ffn_condense_ratio / 1.5


class TestSection4Claims:
    def test_ts_lod_beats_lod_on_dit(self):
        """Fig. 15: EP with TS-LOD is closer to vanilla than EP with LOD,
        and FFN-Reuse-only is the closest."""
        model = build_model("dit", seed=0, total_iterations=24)
        van = ExionPipeline(
            model, ExionConfig.for_model("dit")
        ).generate_vanilla(seed=1, class_label=5)

        def run(mode=None, ep=True):
            cfg = ExionConfig.for_model(
                "dit",
                enable_eager_prediction=ep,
                lod_mode=mode or "ts_lod",
            )
            out = ExionPipeline(model, cfg).generate(seed=1, class_label=5)
            return psnr(van.sample, out.sample)

        psnr_lod = run("lod")
        psnr_ts = run("ts_lod")
        psnr_ffnr = run(ep=False)
        assert psnr_lod < psnr_ts
        assert psnr_ts <= psnr_ffnr + 0.5


class TestSection5Claims:
    def test_exion_beats_gpus_everywhere(self, profiles):
        """Fig. 18/19: EXION wins on every model in both settings."""
        ex24 = ExionAccelerator.exion24()
        gpu = GPUModel(SERVER_GPU)
        for name in BENCHMARK_ORDER:
            spec = get_spec(name)
            r = ex24.simulate(spec, profiles[name])
            g = gpu.simulate(spec)
            assert g.latency_s / r.latency_s > 1.0, name
            assert r.tops_per_watt / g.tops_per_watt > 10.0, name

    def test_small_models_gain_most(self, profiles):
        """MLD (tiny, launch-bound on GPU) shows the largest speedup."""
        ex24 = ExionAccelerator.exion24()
        gpu = GPUModel(SERVER_GPU)
        speedups = {}
        for name in BENCHMARK_ORDER:
            spec = get_spec(name)
            speedups[name] = (
                gpu.simulate(spec).latency_s
                / ex24.simulate(spec, profiles[name]).latency_s
            )
        assert max(speedups, key=speedups.get) == "mld"

    def test_resblock_models_gain_least(self, profiles):
        """Fig. 18 (b): efficiency gains drop for Make-an-Audio / Stable
        Diffusion class models because ResBlocks see no optimization."""
        ex24 = ExionAccelerator.exion24()
        gpu = GPUModel(SERVER_GPU)

        def gain(name):
            spec = get_spec(name)
            r = ex24.simulate(spec, profiles[name])
            g = gpu.simulate(spec)
            return r.tops_per_watt / g.tops_per_watt

        assert gain("stable_diffusion") < gain("mdm")
        assert gain("videocrafter2") < gain("mld")

    def test_ablations_monotone_for_all_models(self, profiles):
        """Fig. 18: Base <= EP <= All and Base <= FFNR <= All."""
        ex24 = ExionAccelerator.exion24()
        for name in ("mld", "dit", "stable_diffusion"):
            spec = get_spec(name)
            p = profiles[name]
            base = ex24.simulate(spec, p, False, False).tops_per_watt
            ep = ex24.simulate(spec, p, False, True).tops_per_watt
            ffnr = ex24.simulate(spec, p, True, False).tops_per_watt
            full = ex24.simulate(spec, p, True, True).tops_per_watt
            assert base <= ep <= full + 1e-9, name
            assert base <= ffnr <= full + 1e-9, name

    def test_batch8_still_wins(self, profiles):
        """Fig. 18/19: EXION remains ahead at batch size eight."""
        ex24 = ExionAccelerator.exion24()
        gpu = GPUModel(SERVER_GPU)
        for name in ("mld", "dit"):
            spec = get_spec(name)
            r = ex24.simulate(spec, profiles[name], batch=8)
            g = gpu.simulate(spec, batch=8)
            assert g.latency_s / r.latency_s > 1.0

    def test_fig19b_shape(self, profiles):
        """Cambricon-D wins on conv-heavy SD; EXION wins on DiT."""
        cd = CambriconDModel()
        gpu = GPUModel(A100)
        ex42 = ExionAccelerator.exion42()
        sd, dit = get_spec("stable_diffusion"), get_spec("dit")
        exion_sd = (
            gpu.simulate(sd).latency_s
            / ex42.simulate(sd, profiles["stable_diffusion"]).latency_s
        )
        exion_dit = (
            gpu.simulate(dit).latency_s
            / ex42.simulate(dit, profiles["dit"]).latency_s
        )
        assert cd.simulate(sd).speedup_vs_gpu > exion_sd
        assert exion_dit > cd.simulate(dit).speedup_vs_gpu

    def test_edge_setting_in_paper_band(self, profiles):
        """Fig. 18 (a)/19 (a): edge speedups land in a plausible band of
        the paper's 43.7-1060.6x range."""
        ex4 = ExionAccelerator.exion4()
        gpu = GPUModel(EDGE_GPU)
        for name in ("mld", "mdm", "edge", "make_an_audio"):
            spec = get_spec(name)
            speedup = (
                gpu.simulate(spec).latency_s
                / ex4.simulate(spec, profiles[name]).latency_s
            )
            assert 10.0 < speedup < 2000.0, (name, speedup)
