"""Integration tests across packages: algorithms + hardware in the loop."""

import numpy as np
import pytest

from repro.core.bitmask import Bitmask
from repro.core.config import ExionConfig
from repro.core.conmerge.cvg import conmerge_tiled
from repro.core.ffn_reuse import FFNReuse
from repro.core.pipeline import ExionPipeline
from repro.core.sparsity import RunStats
from repro.hw.sdue import SDUEModel
from repro.models.zoo import build_model
from repro.workloads.metrics import psnr


class TestSDUEExecutesFFNReuse:
    """Hardware-in-the-loop: the SDUE executing ConMerge blocks reproduces
    the FFN-Reuse sparse iteration exactly."""

    def test_sparse_iteration_first_layer_on_sdue(self, rng):
        from repro.models.ffn import FeedForward

        ffn = FeedForward(16, 32, rng)
        config = ExionConfig(sparse_iters_n=2, ffn_target_sparsity=0.85)
        mgr = FFNReuse(config, num_blocks=1, stats=RunStats())

        x0 = rng.standard_normal((16, 16))
        mgr.begin_iteration(0)
        mgr.executor_for_block(0)(ffn, x0)
        state = mgr.state_for_block(0)

        # Hardware path: ConMerge the bitmask, run merged blocks on the
        # SDUE over the *new* input, reuse dense pre-activations elsewhere.
        x1 = x0 + 0.02 * rng.standard_normal((16, 16))
        tiled = conmerge_tiled(state.bitmask, tile_rows=16)
        sdue = SDUEModel()
        pre_dense = ffn.linear1(x0)  # dense-iteration pre-activation
        pre_hw = sdue.run_conmerge(
            tiled, x1, ffn.linear1.weight, baseline=pre_dense - ffn.linear1.bias
        )
        pre_hw = pre_hw + ffn.linear1.bias

        # Functional path for comparison.
        pre_exact = ffn.linear1(x1)
        mask = state.bitmask.mask
        np.testing.assert_allclose(pre_hw[mask], pre_exact[mask], atol=1e-9)
        np.testing.assert_allclose(pre_hw[~mask], pre_dense[~mask], atol=1e-9)

    def test_sdue_cycles_reflect_compaction(self, rng):
        mask = Bitmask.random(16, 128, sparsity=0.95, rng=rng)
        tiled = conmerge_tiled(mask, tile_rows=16)
        sdue = SDUEModel()
        dense_cycles = sdue.dense_cycles(16, 64, 128)
        sdue.run_conmerge(
            tiled,
            rng.standard_normal((16, 64)),
            rng.standard_normal((64, 128)),
            np.zeros((16, 128)),
        )
        assert sdue.stats.cycles < 0.5 * dense_cycles


class TestAccuracyAcrossModels:
    """Table I style: optimized runs stay close to vanilla on every model."""

    @pytest.mark.parametrize("name", ["mld", "edge", "videocrafter2"])
    def test_psnr_reasonable(self, name):
        model = build_model(name, seed=0, total_iterations=10)
        cfg = ExionConfig.for_model(name)
        pipeline = ExionPipeline(model, cfg)
        van = pipeline.generate_vanilla(seed=4, prompt="integration test")
        opt = pipeline.generate(seed=4, prompt="integration test")
        assert psnr(van.sample, opt.sample) > 5.0

    def test_ffnr_only_more_accurate_than_full(self, dit_model):
        """FFN-Reuse alone should be at least as accurate as FFN-Reuse+EP
        (paper Table I rows)."""
        pipeline_f = ExionPipeline(
            dit_model, ExionConfig.for_model("dit").ablation("ffnr")
        )
        pipeline_a = ExionPipeline(
            dit_model, ExionConfig.for_model("dit").ablation("all")
        )
        van = pipeline_f.generate_vanilla(seed=4, class_label=7)
        ffnr = pipeline_f.generate(seed=4, class_label=7)
        both = pipeline_a.generate(seed=4, class_label=7)
        assert psnr(van.sample, ffnr.sample) >= psnr(van.sample, both.sample) - 1.0


class TestStatsToHardware:
    """Measured sparsity statistics can drive the hardware simulator."""

    def test_profile_from_run_feeds_accelerator(self, dit_model):
        from repro.hw.accelerator import ExionAccelerator
        from repro.hw.profile import profile_from_stats

        cfg = ExionConfig.for_model("dit")
        result = ExionPipeline(dit_model, cfg).generate(seed=1, class_label=2)
        profile = profile_from_stats(dit_model.spec, result.stats)
        report = ExionAccelerator.exion24().simulate(
            dit_model.spec, profile=profile, iterations=12
        )
        assert report.latency_s > 0
        assert report.ops_reduction > 0.2

    def test_measured_masks_feed_conmerge(self, dit_model):
        cfg = ExionConfig.for_model("dit")
        pipeline = ExionPipeline(dit_model, cfg, collect_masks=True)
        result = pipeline.generate(seed=1, class_label=2)
        mask = result.stats.ffn_bitmasks[0]
        tiled = conmerge_tiled(mask, tile_rows=16)
        assert tiled.remaining_column_ratio < 1.0
        expected = {(int(r), int(c)) for r, c in np.argwhere(mask.mask)}
        got = set()
        for tile_idx, tile in enumerate(tiled.tile_results):
            for block in tile.blocks:
                for cell in block.entries():
                    got.add((cell.input_row + 16 * tile_idx, cell.origin_col))
        assert got == expected
