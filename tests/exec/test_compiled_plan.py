"""Structural invariants of :func:`repro.program.compile_plan`.

The compiled schedule is where the executor's correctness starts: if the
phase grouping here drifts from what the run-time FFN-Reuse manager
derives step by step, the parity suite fails downstream in confusing
ways. These tests pin the schedule directly — for every model, both
lowering scales, every ablation — and check that compilation is a pure
view (the Table II accelerator points price the same plan identically
before and after compiling it).
"""

import dataclasses
import math

import pytest

from repro.core.config import ExionConfig
from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import estimate_profile
from repro.program import compile_plan, lower_plan
from repro.program.compiled import TILE_ROWS, TILE_WIDTH
from repro.workloads.specs import MODEL_SPECS, get_spec

MODELS = sorted(MODEL_SPECS)
ABLATIONS = ("base", "ep", "ffnr", "all")
SCALES = ("paper", "sim")
TABLE2 = {
    "exion4": ExionAccelerator.exion4,
    "exion24": ExionAccelerator.exion24,
    "exion42": ExionAccelerator.exion42,
}


def _compiled(model, ablation, scale, iterations=10):
    config = ExionConfig.for_model(model).ablation(ablation)
    plan = lower_plan(get_spec(model), config=config,
                      iterations=iterations, scale=scale)
    return compile_plan(plan)


class TestScheduleInvariants:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("scale", SCALES)
    def test_steps_and_phases_partition(self, model, scale):
        for ablation in ABLATIONS:
            cp = _compiled(model, ablation, scale)
            assert cp.iterations == len(cp.plan.steps)
            assert [s.index for s in cp.steps] == list(range(cp.iterations))
            # Phases partition the step set exactly.
            covered = []
            for phase in cp.phases:
                covered.append(phase.dense_step)
                covered.extend(phase.sparse_steps)
                # Sparse steps trail their dense step in order.
                assert list(phase.sparse_steps) == sorted(phase.sparse_steps)
                assert all(s > phase.dense_step for s in phase.sparse_steps)
            assert sorted(covered) == list(range(cp.iterations))
            # Step→phase assignment agrees with the phase view.
            for phase in cp.phases:
                for idx in (phase.dense_step, *phase.sparse_steps):
                    assert cp.steps[idx].phase == phase.index
            assert cp.dense_steps == tuple(
                p.dense_step for p in cp.phases
            )

    @pytest.mark.parametrize("model", MODELS)
    def test_dense_cadence_matches_sparse_iters_n(self, model):
        """With FFN-Reuse on, dense steps recur every N+1 iterations —
        the schedule FFNReuse.begin_iteration derives at run time."""
        cp = _compiled(model, "all", "sim")
        n = cp.plan.sparse_iters_n
        assert cp.dense_steps == tuple(range(0, cp.iterations, n + 1))
        assert cp.max_phase_length <= n + 1

    @pytest.mark.parametrize("model", MODELS)
    def test_ffnr_off_means_every_step_its_own_phase(self, model):
        cp = _compiled(model, "ep", "sim")
        assert not cp.plan.enable_ffn_reuse
        assert cp.num_phases == cp.iterations
        assert all(p.sparse_steps == () for p in cp.phases)

    def test_sparse_start_plan_rejected(self):
        plan = lower_plan(get_spec("dit"), iterations=4)
        bad_steps = tuple(
            dataclasses.replace(s, is_dense=False) for s in plan.steps
        )
        bad = dataclasses.replace(plan, steps=bad_steps)
        with pytest.raises(ValueError, match="starts with a sparse step"):
            compile_plan(bad)

    def test_compilation_is_deterministic(self):
        a = _compiled("dit", "all", "sim")
        b = _compiled("dit", "all", "sim")
        assert a.steps == b.steps
        assert a.phases == b.phases
        assert a.index_set_stats() == b.index_set_stats()


class TestIndexSetStats:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("scale", SCALES)
    def test_expected_sizes_derive_from_plan_targets(self, model, scale):
        cp = _compiled(model, "all", scale)
        program = cp.plan.program
        stats = cp.index_set_stats()
        assert stats["model"] == program.model
        assert stats["scale"] == scale
        assert stats["tile_rows"] == TILE_ROWS
        assert stats["tile_width"] == TILE_WIDTH
        ffn = stats["ffn"]
        assert ffn["mask_shape"] == [program.tokens, program.hidden]
        assert ffn["expected_gather_size"] == int(round(
            (1.0 - cp.plan.ffn_target_sparsity)
            * program.tokens * program.hidden
        ))
        assert ffn["tiles_per_mask"] == (
            math.ceil(program.tokens / TILE_ROWS)
            * math.ceil(program.hidden / TILE_WIDTH)
        )
        attn = stats["attention"]
        assert attn["keep_per_row"] == max(
            1, math.ceil(cp.plan.top_k_ratio * program.tokens)
        )
        assert attn["expected_keep_size"] == (
            program.heads * program.tokens * attn["keep_per_row"]
        )
        assert attn["cached_weight_operands"] == 2 * program.depth

    def test_sections_follow_ablation_flags(self):
        assert "ffn" not in _compiled("dit", "ep", "sim").index_set_stats()
        assert "attention" not in (
            _compiled("dit", "ffnr", "sim").index_set_stats()
        )
        base = _compiled("dit", "base", "sim").index_set_stats()
        assert "ffn" not in base and "attention" not in base


class TestCompilationIsAPureView:
    """compile_plan must not perturb the plan the Table II accelerator
    models price — same report fields bit for bit, before and after."""

    @pytest.mark.parametrize("table2", sorted(TABLE2))
    def test_pricing_unchanged_by_compilation(self, table2):
        spec = get_spec("dit")
        profile = estimate_profile(spec, seed=0)
        acc = TABLE2[table2]()
        plan = lower_plan(spec, config=ExionConfig.for_model("dit"),
                          iterations=10)
        before = acc.simulate_plan(plan, profile)
        cp = compile_plan(plan)
        after = acc.simulate_plan(cp.plan, profile)
        assert cp.plan is plan
        assert (before.latency_s, before.energy_j, before.computed_ops) == (
            after.latency_s, after.energy_j, after.computed_ops
        )
