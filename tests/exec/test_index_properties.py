"""Property-based tests for the index-set conversions the executor uses.

The compiled executor never re-tests a bitmask at step time — it runs on
flat gather-index sets produced once per phase by the conversions in
:mod:`repro.core.bitmask` and :mod:`repro.core.sparsity`. If any of these
drops, duplicates or reorders an index, the executor silently recomputes
the wrong elements, so the round-trip laws are pinned here over random
masks plus the degenerate corners (empty, full, single element) and
non-dividing tile boundaries.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmask import Bitmask
from repro.core.sparsity import (
    indices_to_mask,
    mask_to_indices,
    partition_indices_by_tiles,
)


@st.composite
def masks(draw, max_rows=40, max_cols=40):
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    return rng.random((rows, cols)) < density


class TestBitmaskGatherRoundTrip:
    @given(masks())
    @settings(max_examples=80, deadline=None)
    def test_mask_to_gather_to_mask(self, mask):
        bm = Bitmask(mask)
        indices = bm.to_gather_indices()
        assert indices.dtype == np.int64
        assert np.all(np.diff(indices) > 0)  # ascending, no duplicates
        assert indices.size == bm.nnz
        back = Bitmask.from_gather_indices(indices, bm.rows, bm.cols)
        assert np.array_equal(back.mask, bm.mask)

    @given(masks())
    @settings(max_examples=40, deadline=None)
    def test_gather_indices_agree_with_sparsity_module(self, mask):
        assert np.array_equal(Bitmask(mask).to_gather_indices(),
                              mask_to_indices(mask))

    @pytest.mark.parametrize("rows,cols", ((1, 1), (1, 7), (16, 16), (3, 5)))
    def test_empty_and_full_masks(self, rows, cols):
        empty = Bitmask(np.zeros((rows, cols), dtype=bool))
        assert empty.to_gather_indices().size == 0
        back = Bitmask.from_gather_indices(np.array([], dtype=np.int64),
                                           rows, cols)
        assert np.array_equal(back.mask, empty.mask)

        full = Bitmask(np.ones((rows, cols), dtype=bool))
        indices = full.to_gather_indices()
        assert np.array_equal(indices, np.arange(rows * cols))
        assert np.array_equal(
            Bitmask.from_gather_indices(indices, rows, cols).mask, full.mask
        )

    @given(st.integers(1, 30), st.integers(1, 30), st.integers(0, 899))
    @settings(max_examples=60, deadline=None)
    def test_single_element_mask(self, rows, cols, flat):
        flat = flat % (rows * cols)
        mask = np.zeros(rows * cols, dtype=bool)
        mask[flat] = True
        bm = Bitmask(mask.reshape(rows, cols))
        assert list(bm.to_gather_indices()) == [flat]
        back = Bitmask.from_gather_indices([flat], rows, cols)
        assert np.array_equal(back.mask, bm.mask)

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Bitmask.from_gather_indices([4], 2, 2)
        with pytest.raises(ValueError, match="out of range"):
            Bitmask.from_gather_indices([-1], 2, 2)


class TestSparsityIndexRoundTrip:
    @given(masks())
    @settings(max_examples=80, deadline=None)
    def test_mask_indices_mask(self, mask):
        indices = mask_to_indices(mask)
        back = indices_to_mask(indices, mask.shape)
        assert back.dtype == bool
        assert np.array_equal(back, mask)

    @given(masks(max_rows=6, max_cols=6))
    @settings(max_examples=40, deadline=None)
    def test_indices_mask_indices(self, mask):
        indices = mask_to_indices(mask)
        again = mask_to_indices(indices_to_mask(indices, mask.shape))
        assert np.array_equal(again, indices)

    def test_bad_shapes_rejected(self):
        with pytest.raises(ValueError):
            indices_to_mask(np.array([0]), (0, 4))
        with pytest.raises(ValueError):
            indices_to_mask(np.array([8]), (2, 4))


class TestTilePartition:
    @given(masks(), st.integers(1, 17), st.integers(1, 17))
    @settings(max_examples=80, deadline=None)
    def test_partition_is_exact(self, mask, tile_rows, tile_cols):
        """Tiles are disjoint, correctly binned, ascending, and their
        union round-trips to the original mask."""
        indices = mask_to_indices(mask)
        tiles = partition_indices_by_tiles(indices, mask.shape,
                                           tile_rows, tile_cols)
        total = 0
        cols = mask.shape[1]
        for (tr, tc), tile_indices in tiles.items():
            total += tile_indices.size
            assert tile_indices.size > 0  # empty tiles are omitted
            assert np.all(np.diff(tile_indices) > 0)
            r = tile_indices // cols
            c = tile_indices % cols
            assert np.all(r // tile_rows == tr)
            assert np.all(c // tile_cols == tc)
        assert total == indices.size  # disjoint: sizes add up exactly
        if tiles:
            union = np.sort(np.concatenate(list(tiles.values())))
            assert np.array_equal(union, indices)
            rebuilt = indices_to_mask(union, mask.shape)
            assert np.array_equal(rebuilt, mask)
        else:
            assert indices.size == 0

    def test_non_dividing_tile_boundaries(self):
        """A 5x7 mask with 2x3 tiles: ragged edge tiles keep their
        reduced extent and every element lands in the right tile."""
        mask = np.ones((5, 7), dtype=bool)
        tiles = partition_indices_by_tiles(mask_to_indices(mask),
                                           mask.shape, 2, 3)
        assert set(tiles) == {(tr, tc) for tr in range(3) for tc in range(3)}
        # Bottom-right ragged tile: one row (4), one column (6).
        assert list(tiles[(2, 2)]) == [4 * 7 + 6]
        # A full interior tile covers two disjoint row segments —
        # non-contiguous in flat order.
        interior = tiles[(0, 0)]
        assert list(interior) == [0, 1, 2, 7, 8, 9]
        assert np.any(np.diff(interior) > 1)

    def test_tile_validation(self):
        with pytest.raises(ValueError, match="2-D"):
            partition_indices_by_tiles(np.array([0]), (4,), 2, 2)
        with pytest.raises(ValueError, match="positive"):
            partition_indices_by_tiles(np.array([0]), (4, 4), 0, 2)
        with pytest.raises(ValueError, match="out of range"):
            partition_indices_by_tiles(np.array([16]), (4, 4), 2, 2)
