"""ExecArena scratch-buffer reuse: stable buffers, zero drift."""

import numpy as np

from repro.core.config import ExionConfig
from repro.exec.arena import ExecArena, arena_take, arena_zeros


class TestExecArena:
    def test_same_key_reuses_the_buffer(self):
        arena = ExecArena()
        a = arena.take("x", (4, 8))
        b = arena.take("x", (4, 8))
        assert a is b
        assert arena.allocations == 1
        assert arena.reuses == 1

    def test_distinct_shape_or_dtype_allocates(self):
        arena = ExecArena()
        base = arena.take("x", (4, 8))
        assert arena.take("x", (2, 8)) is not base
        assert arena.take("x", (4, 8), dtype=np.float32) is not base
        assert arena.take("y", (4, 8)) is not base
        assert arena.allocations == 4

    def test_zeros_clears_reused_memory(self):
        arena = ExecArena()
        buf = arena.take("x", (3, 3))
        buf.fill(7.0)
        again = arena.zeros("x", (3, 3))
        assert again is buf
        assert not again.any()

    def test_stats_and_clear(self):
        arena = ExecArena()
        arena.take("x", (2, 2))
        arena.take("x", (2, 2))
        stats = arena.stats()
        assert stats["allocations"] == 1
        assert stats["reuses"] == 1
        assert stats["buffers"] == 1
        assert stats["bytes"] == 2 * 2 * 8
        assert list(stats) == sorted(stats)
        arena.clear()
        assert arena.stats()["buffers"] == 0

    def test_module_helpers_fall_back_without_arena(self):
        direct = arena_take(None, "x", (2, 2))
        assert direct.shape == (2, 2)
        zeroed = arena_zeros(None, "x", (2, 2))
        assert not zeroed.any()
        assert arena_take(None, "x", (2, 2)) is not direct


class TestArenaByteIdentity:
    def test_repeated_generations_are_bit_equal(self):
        """Two generations on one executor reuse every scratch buffer —
        the second run (all-reuse) must be bit-identical to the first."""
        from repro.exec.executor import CompiledExecutor
        from repro.models.zoo import build_model

        model = build_model("dit", total_iterations=4)
        config = ExionConfig.for_model("dit")
        executor = CompiledExecutor(model, config)
        first = executor.generate(seed=0)
        allocations_after_first = executor._arena.allocations
        second = executor.generate(seed=0)
        np.testing.assert_array_equal(first.sample, second.sample)
        # the second generation allocated nothing new
        assert executor._arena.allocations == allocations_after_first
        assert executor._arena.reuses > 0
