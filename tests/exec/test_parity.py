"""Differential parity: the compiled executor IS the interpreted pipeline.

The compiled path (:mod:`repro.exec`) re-derives nothing numerically —
every gather, scatter and GEMM replays the interpreted oracle's exact
arithmetic, so samples and :class:`~repro.core.sparsity.RunStats` must be
**byte-identical**, not merely close. The grid mirrors the golden-parity
idiom of ``tests/program/``: every zoo model × every ablation, then a
seeded fuzz layer over the knobs that actually reach the numerics
(activation quantization, threshold tables, conditioning, batching).

The Table II accelerator points (EXION4/24/42) differ only in hardware
pricing, not in the executed arithmetic, so the execution grid's config
axis is the set of software knobs; the Table II axis is exercised where
it matters — in the plan-structure suite next door
(``test_compiled_plan.py``).
"""

import dataclasses
import functools

import numpy as np
import pytest

from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.core.thresholds import ThresholdTable
from repro.models.zoo import build_model
from repro.serve.batched import BatchedPipeline
from repro.workloads.specs import MODEL_SPECS

MODELS = sorted(MODEL_SPECS)
ABLATIONS = ("base", "ep", "ffnr", "all")


@functools.lru_cache(maxsize=None)
def _model(name):
    """Small-but-real build of a zoo model, cached across the module."""
    return build_model(name, seed=0, total_iterations=6, depth=2)


def _stats_bytes(stats):
    """Every RunStats field reduced to exactly comparable primitives."""
    return (
        (stats.ffn_layer1.dense, stats.ffn_layer1.computed),
        (stats.ffn_layer2.dense, stats.ffn_layer2.computed),
        tuple(stats.ffn_sparsities),
        stats.dense_iterations,
        stats.sparse_iterations,
        (stats.attention_scores.dense, stats.attention_scores.computed),
        (stats.q_projection.dense, stats.q_projection.computed),
        (stats.kv_projection.dense, stats.kv_projection.computed),
        tuple(stats.attention_sparsities),
        stats.prediction_overhead_macs,
        tuple(m.mask.tobytes() for m in stats.ffn_bitmasks),
        tuple(np.asarray(k).tobytes() for k in stats.attention_keepmasks),
    )


def _assert_identical(interpreted, compiled):
    assert np.array_equal(interpreted.sample, compiled.sample)
    assert interpreted.sample.dtype == compiled.sample.dtype
    assert _stats_bytes(interpreted.stats) == _stats_bytes(compiled.stats)
    assert (interpreted.diffusion.iterations
            == compiled.diffusion.iterations)


def _pipelines(model_name, config, **kwargs):
    model = _model(model_name)
    return (
        ExionPipeline(model, config, collect_masks=True, **kwargs),
        ExionPipeline(model, config, collect_masks=True, compiled=True,
                      **kwargs),
    )


class TestEveryModelEveryAblation:
    """The full grid: 9 models × 4 ablations, masks collected."""

    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("ablation", ABLATIONS)
    def test_samples_and_stats_byte_identical(self, model, ablation):
        config = ExionConfig.for_model(model).ablation(ablation)
        interp, comp = _pipelines(model, config)
        ri = interp.generate(seed=3, prompt="a corgi", class_label=7)
        rc = comp.generate(seed=3, prompt="a corgi", class_label=7)
        _assert_identical(ri, rc)


class TestSeededFuzz:
    """Several seeds over the knobs that reach the numerics."""

    @pytest.mark.parametrize("seed", (0, 1, 17, 4096))
    @pytest.mark.parametrize("model", ("dit", "stable_diffusion", "mld"))
    def test_seed_sweep(self, model, seed):
        config = ExionConfig.for_model(model)
        interp, comp = _pipelines(model, config)
        _assert_identical(interp.generate(seed=seed),
                          comp.generate(seed=seed))

    @pytest.mark.parametrize("bits", (6, 8))
    def test_activation_quantization(self, bits):
        config = ExionConfig.for_model("dit")
        interp, comp = _pipelines("dit", config, activation_bits=bits)
        _assert_identical(interp.generate(seed=5, class_label=2),
                          comp.generate(seed=5, class_label=2))

    def test_threshold_table(self):
        config = ExionConfig.for_model("dit")
        table = ThresholdTable(target_sparsity=config.ffn_target_sparsity)
        table.set(0, 0, 0.25)
        table.set(1, 1, 0.05)
        interp, comp = _pipelines("dit", config, threshold_table=table)
        _assert_identical(interp.generate(seed=9), comp.generate(seed=9))

    def test_fixed_threshold_config(self):
        config = dataclasses.replace(ExionConfig.for_model("dit"),
                                     ffn_threshold=0.1)
        interp, comp = _pipelines("dit", config)
        _assert_identical(interp.generate(seed=9), comp.generate(seed=9))

    def test_trace_collection_falls_back_to_oracle(self):
        """Traces are an interpreted-only analysis feature; asking for
        them must transparently use the oracle (and still agree)."""
        config = ExionConfig.for_model("dit")
        interp, comp = _pipelines("dit", config)
        ri = interp.generate(seed=2, collect_traces=True)
        rc = comp.generate(seed=2, collect_traces=True)
        _assert_identical(ri, rc)
        assert rc.diffusion.block_traces


class TestBatchedParity:
    """CompiledBatchedExecutor vs the interpreted BatchedPipeline."""

    @pytest.mark.parametrize("model", ("dit", "stable_diffusion", "mld"))
    def test_batched_samples_and_stats(self, model):
        config = ExionConfig.for_model(model)
        m = _model(model)
        interp = BatchedPipeline(m, config, collect_masks=True)
        comp = BatchedPipeline(m, config, collect_masks=True, compiled=True)
        si, ri = interp.generate_batch([1, 2, 3], prompt="x", class_label=5)
        sc, rc = comp.generate_batch([1, 2, 3], prompt="x", class_label=5)
        assert np.array_equal(si, sc)
        for a, b in zip(ri, rc):
            assert _stats_bytes(a.stats) == _stats_bytes(b.stats)

    def test_batched_quantized(self):
        config = ExionConfig.for_model("dit")
        m = _model("dit")
        interp = BatchedPipeline(m, config, activation_bits=8)
        comp = BatchedPipeline(m, config, activation_bits=8, compiled=True)
        si, _ = interp.generate_batch([4, 5], class_label=1)
        sc, _ = comp.generate_batch([4, 5], class_label=1)
        assert np.array_equal(si, sc)

    def test_pipeline_generate_batch_routes_compiled(self):
        """ExionPipeline.generate_batch(batched=True) honours compiled."""
        config = ExionConfig.for_model("dit")
        m = _model("dit")
        si, _ = ExionPipeline(m, config).generate_batch(
            [7, 8], class_label=2, batched=True)
        sc, _ = ExionPipeline(m, config, compiled=True).generate_batch(
            [7, 8], class_label=2, batched=True)
        assert np.array_equal(si, sc)

    def test_batched_matches_single_stream(self):
        """Compiled batch b == compiled single-stream per seed — the same
        invariant the interpreted serve layer holds."""
        config = ExionConfig.for_model("dit")
        m = _model("dit")
        comp = BatchedPipeline(m, config, compiled=True)
        sc, _ = comp.generate_batch([11, 12], class_label=3)
        single = ExionPipeline(m, config, compiled=True)
        for b, seed in enumerate((11, 12)):
            ref = single.generate(seed=seed, class_label=3)
            assert np.array_equal(sc[b], ref.sample)
