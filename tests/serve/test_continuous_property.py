"""Property suite: the dense-phase join constraint holds under churn.

Hypothesis drives random submit/step interleavings (random priorities,
tenants, batch caps) through the continuous scheduler and checks the
structural invariants the FFN-Reuse constraint demands, for **every**
zoo model's phase schedule:

- a membership change only ever happens while every member sits at a
  dense-phase boundary, and the joiner's cursor is itself a boundary;
- every admitted composition satisfies ``CompiledPlan.cursors_aligned``
  (the scheduler *proves* lockstep compatibility, never assumes it);
- accounting conserves requests: served + expired == submitted.

The structural layer runs dry (cursor arithmetic only), which is what
makes the full model x ablation grid affordable. A numeric layer on DiT
then re-checks byte-identity to solo generation under random staggered
joins — the executor-level guarantee the structural invariants exist to
protect.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.serve import ContinuousPolicy, ContinuousServer
from repro.serve.cache import ThresholdCache
from repro.workloads.specs import MODEL_SPECS

MODELS = sorted(MODEL_SPECS)
#: Covers at least one full phase period of every zoo schedule (the
#: longest is mld's sparse_iters_n=9 -> period 10).
DRY_ITERATIONS = 12

FAST_ITERATIONS = 6
DEPTH = 2
_CACHE = ThresholdCache()

# One scheduling action: enqueue a request or advance the batch a tick.
_OPS = st.lists(
    st.one_of(
        st.tuples(
            st.just("submit"),
            st.integers(min_value=0, max_value=2),  # priority class
            st.sampled_from(["a", "b"]),  # tenant
        ),
        st.tuples(st.just("step")),
    ),
    min_size=1,
    max_size=24,
)


def _run_ops(model, ablation, ops, max_batch_size):
    server = ContinuousServer(
        model,
        config=ExionConfig.for_model(model).ablation(ablation),
        policy=ContinuousPolicy(max_batch_size=max_batch_size),
        tenant_weights={"a": 2.0, "b": 1.0},
        dry_run=True,
        total_iterations=DRY_ITERATIONS,
    )
    submitted = 0
    served = []
    for op in ops:
        if op[0] == "submit":
            server.submit(seed=submitted, priority=op[1], tenant=op[2])
            submitted += 1
        else:
            served.extend(server.step())
    served.extend(server.run_until_drained())
    return server, submitted, served


@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("ablation", ["base", "all"])
@settings(max_examples=10, deadline=None)
@given(ops=_OPS, max_batch_size=st.integers(min_value=1, max_value=3))
def test_joins_only_at_dense_boundaries(model, ablation, ops, max_batch_size):
    server, submitted, served = _run_ops(model, ablation, ops, max_batch_size)
    plan = server.plan
    joins = [e for e in server.events if e["kind"] == "join"]
    for event in joins:
        # The joiner enters at a dense boundary of its own schedule...
        assert plan.is_boundary(event["cursor"])
        # ...while every incumbent also sits at a boundary...
        assert all(plan.is_boundary(c) for c in event["active_cursors"])
        # ...and the scheduler proved the composition can run lockstep.
        assert plan.cursors_aligned(
            list(event["active_cursors"]) + [event["cursor"]]
        )
    # Conservation: with no deadlines or depth bounds, everything
    # submitted is eventually served exactly once.
    assert len(served) == submitted
    assert sorted(r.request_id for r in served) == list(range(submitted))


@functools.lru_cache(maxsize=None)
def _oracle():
    model = _CACHE.model("dit", 0, FAST_ITERATIONS, DEPTH)
    return ExionPipeline(model, ExionConfig.for_model("dit").ablation("all"))


@settings(max_examples=8, deadline=None)
@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=3
    ),
    stagger=st.integers(min_value=0, max_value=5),
    late_seed=st.integers(min_value=51, max_value=99),
)
def test_random_staggered_joins_byte_identical(seeds, stagger, late_seed):
    """Numeric layer: whatever boundary the late request lands on, every
    output equals the solo generation of the same request."""
    server = ContinuousServer(
        "dit",
        config=ExionConfig.for_model("dit").ablation("all"),
        policy=ContinuousPolicy(max_batch_size=4),
        cache=_CACHE,
        total_iterations=FAST_ITERATIONS,
        depth=DEPTH,
    )
    for i, seed in enumerate(seeds):
        server.submit(seed=seed, class_label=i)
    for _ in range(stagger):
        server.step()
    server.submit(seed=late_seed, class_label=7)
    served = server.run_until_drained()
    assert len(served) == len(seeds) + 1
    oracle = _oracle()
    for record in served:
        solo = oracle.generate(
            seed=record.request.seed, class_label=record.request.class_label
        )
        assert np.array_equal(solo.sample, record.result.sample)
        assert solo.stats.summary() == record.result.stats.summary()
