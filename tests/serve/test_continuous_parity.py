"""Differential parity: continuous batching never changes the answer.

The scheduler's correctness contract is byte-identity, not closeness:
whatever membership churn the continuous batch goes through — staggered
dense-boundary joins, completions leaving mid-phase, preemption and
resume — every served request's sample and :class:`RunStats` must equal
what a solo ``ExionPipeline.generate()`` of the same request produces.
These tests drive the real executor (no dry-run) through each membership
pattern and compare against the solo oracle.
"""

import functools

import numpy as np
import pytest

from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.serve import ContinuousPolicy, ContinuousServer, Priority
from repro.serve.cache import ThresholdCache

FAST_ITERATIONS = 6
DEPTH = 2  # shrink transformer depth; the schedule shape is unchanged

#: One cache for the module: every server and the solo oracle share the
#: exact same model build, so differences can only come from scheduling.
_CACHE = ThresholdCache()


def _server(ablation="all", **policy_kwargs):
    return ContinuousServer(
        "dit",
        config=ExionConfig.for_model("dit").ablation(ablation),
        policy=ContinuousPolicy(**policy_kwargs),
        cache=_CACHE,
        total_iterations=FAST_ITERATIONS,
        depth=DEPTH,
    )


@functools.lru_cache(maxsize=None)
def _oracle(ablation):
    model = _CACHE.model("dit", 0, FAST_ITERATIONS, DEPTH)
    return ExionPipeline(model, ExionConfig.for_model("dit").ablation(ablation))


def _assert_solo_identical(ablation, served):
    assert served, "expected at least one served request"
    oracle = _oracle(ablation)
    for record in served:
        request = record.request
        solo = oracle.generate(seed=request.seed, class_label=request.class_label)
        assert np.array_equal(solo.sample, record.result.sample)
        assert solo.stats.summary() == record.result.stats.summary()


@pytest.mark.parametrize("ablation", ["base", "all"])
def test_staggered_joins_match_solo(ablation):
    """Requests joining a live batch at later dense boundaries produce
    exactly the solo outputs."""
    server = _server(ablation, max_batch_size=4)
    for i in range(3):
        server.submit(seed=10 + i, class_label=i)
    server.step()  # initial cohort starts; batch is now mid-generation
    server.submit(seed=99, class_label=7)  # must wait for a boundary
    served = server.run_until_drained()
    assert len(served) == 4
    late_join = [e for e in server.events if e["kind"] == "join"][-1]
    assert late_join["active_cursors"] != ()  # it really joined a live batch
    _assert_solo_identical(ablation, served)


def test_preemption_and_resume_match_solo():
    """A preempted victim resumes from its cursor and still lands on the
    solo-identical output."""
    server = _server("all", max_batch_size=2)
    server.submit(seed=1, class_label=11, priority=Priority.BATCH)
    server.submit(seed=2, class_label=22, priority=Priority.BATCH)
    for _ in range(3):
        server.step()  # both reach the cursor-3 dense boundary
    server.submit(seed=3, class_label=33, priority=Priority.INTERACTIVE)
    served = server.run_until_drained()
    assert server.report().preemptions == 1
    assert len(served) == 3
    _assert_solo_identical("all", served)


def test_deadline_eviction_leaves_survivors_identical():
    """Evicting an expired member mid-generation is an index-set edit:
    the surviving members' outputs are untouched."""
    clock_now = [0.0]
    server = ContinuousServer(
        "dit",
        config=ExionConfig.for_model("dit").ablation("all"),
        policy=ContinuousPolicy(max_batch_size=4),
        cache=_CACHE,
        total_iterations=FAST_ITERATIONS,
        depth=DEPTH,
        clock=lambda: clock_now[0],
    )
    doomed = server.submit(seed=5, class_label=1, deadline_s=2.0)
    server.submit(seed=6, class_label=2)
    server.submit(seed=7, class_label=3)
    server.step(now=0.0)
    clock_now[0] = 3.0  # doomed request's deadline passes mid-phase
    served = server.run_until_drained()
    assert server.report().deadline_evictions == 1
    assert sorted(r.request_id for r in served) == [1, 2]
    assert doomed not in {r.request_id for r in served}
    _assert_solo_identical("all", served)


def test_single_request_continuous_equals_solo():
    """Degenerate case: a lone request through the continuous path is the
    solo generation, byte for byte."""
    server = _server("all", max_batch_size=8)
    server.submit(seed=42, class_label=123)
    served = server.run_until_drained()
    assert len(served) == 1
    assert served[0].batch_size == 1
    _assert_solo_identical("all", served)
