"""ExionServer end-to-end behavior: batching, results, accounting."""

import numpy as np
import pytest

from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.models.zoo import build_model
from repro.serve import BatchingPolicy, ExionServer, ThresholdCache

FAST_ITERATIONS = 6


class FakeClock:
    """Deterministic clock the tests advance by hand."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


def make_server(**kwargs):
    kwargs.setdefault("total_iterations", FAST_ITERATIONS)
    return ExionServer("dit", **kwargs)


class TestServing:
    def test_unknown_model_fails_at_construction(self):
        from repro.core.config import ExionConfig

        with pytest.raises(KeyError):
            ExionServer("resnet50")
        # Even with an explicit config (which skips for_model lookup).
        with pytest.raises(KeyError):
            ExionServer("resnet50", config=ExionConfig.for_model("dit"))

    def test_results_ordered_and_batched(self):
        server = make_server(policy=BatchingPolicy(max_batch_size=4))
        for seed in range(10):
            server.submit(seed=seed, class_label=seed % 2)
        results = server.run_until_drained()
        assert [r.request_id for r in results] == list(range(10))
        assert [r.batch_size for r in results] == [4] * 8 + [2] * 2
        report = server.report()
        assert report.requests_served == 10
        assert report.batches_served == 3
        assert report.mean_batch_size == pytest.approx(10 / 3)
        assert report.samples_per_s > 0

    def test_step_honors_policy(self):
        clock = FakeClock()
        server = make_server(
            policy=BatchingPolicy(max_batch_size=4, max_wait_s=5.0),
            clock=clock,
        )
        server.submit(seed=0)
        assert server.step() == []  # 1 request, waited 0s: not due
        clock.now = 6.0
        served = server.step()  # max_wait exceeded: batch of one
        assert len(served) == 1
        assert served[0].batch_size == 1
        assert served[0].wait_s == pytest.approx(6.0)

    def test_empty_queue_step_is_noop(self):
        server = make_server()
        assert server.step() == []
        assert server.run_until_drained() == []
        assert server.report().batches_served == 0

    def test_served_results_match_sequential_generation(self):
        server = make_server(policy=BatchingPolicy(max_batch_size=3))
        seeds_labels = [(0, 5), (1, 5), (9, 2), (4, 0)]
        for seed, label in seeds_labels:
            server.submit(seed=seed, class_label=label)
        results = server.run_until_drained()

        model = build_model("dit", seed=0, total_iterations=FAST_ITERATIONS)
        pipeline = ExionPipeline(model, ExionConfig.for_model("dit"))
        for record, (seed, label) in zip(results, seeds_labels):
            want = pipeline.generate(seed=seed, class_label=label)
            assert np.array_equal(record.result.sample, want.sample)
            assert record.result.stats.summary() == want.stats.summary()

    def test_result_lookup_by_id(self):
        server = make_server()
        rid = server.submit(seed=3, class_label=1)
        with pytest.raises(KeyError):
            server.result(rid)
        server.run_until_drained()
        assert server.result(rid).request.seed == 3

    def test_stats_isolation_across_requests(self):
        server = make_server(policy=BatchingPolicy(max_batch_size=8))
        for seed in range(3):
            server.submit(seed=seed, class_label=0)
        results = server.run_until_drained()
        stats = [r.result.stats for r in results]
        assert len({id(s) for s in stats}) == 3
        merged = server.report().merged_stats
        assert merged.ffn_layer1.dense == sum(
            s.ffn_layer1.dense for s in stats
        )
        assert merged.dense_iterations == sum(
            s.dense_iterations for s in stats
        )

    def test_shared_cache_across_servers(self):
        cache = ThresholdCache()
        first = make_server(cache=cache)
        first.submit(seed=0)
        first.run_until_drained()
        misses_after_first = cache.info()["misses"]
        second = make_server(cache=cache)
        second.submit(seed=1)
        second.run_until_drained()
        # The second server reuses the first's model and pipeline.
        assert cache.info()["misses"] == misses_after_first
        assert cache.info()["hits"] > 0

    def test_retain_results_false_keeps_memory_flat(self):
        server = make_server(retain_results=False)
        server.submit(seed=0, class_label=1)
        served = server.run_until_drained()
        assert len(served) == 1
        assert server.results == {}
        # Aggregates still accumulate incrementally.
        report = server.report()
        assert report.requests_served == 1
        assert report.merged_stats.dense_iterations > 0

    def test_result_pop_releases_storage(self):
        server = make_server()
        rid = server.submit(seed=0)
        server.run_until_drained()
        record = server.result(rid, pop=True)
        assert record.request_id == rid
        with pytest.raises(KeyError):
            server.result(rid)
        # Report aggregates survive the pop.
        assert server.report().requests_served == 1

    def test_service_time_hook_overrides_wall_clock(self):
        clock = FakeClock()
        server = make_server(
            policy=BatchingPolicy(max_batch_size=2),
            clock=clock,
            service_time=lambda batch: 2.5 * len(batch),
        )
        clock.now = 1.0
        for seed in range(2):
            server.submit(seed=seed, class_label=0)
        clock.now = 4.0
        results = server.run_until_drained()
        # Simulated accounting: the hook's value, not elapsed wall clock.
        assert [r.service_s for r in results] == [5.0, 5.0]
        assert [r.wait_s for r in results] == [3.0, 3.0]
        report = server.report()
        assert report.timing_source == "simulated"
        assert report.busy_s == pytest.approx(5.0)
        assert report.queue_wait_s == pytest.approx(6.0)
        assert report.mean_wait_s == pytest.approx(3.0)
        # Real generation still happened alongside the simulated timing.
        assert results[0].result is not None

    def test_wall_clock_fallback_without_hook(self):
        server = make_server()
        server.submit(seed=0)
        server.run_until_drained()
        assert server.report().timing_source == "wall_clock"

    def test_dry_run_accounts_without_generating(self):
        clock = FakeClock()
        server = make_server(
            policy=BatchingPolicy(max_batch_size=4),
            clock=clock,
            service_time=lambda batch: 1.5,
            dry_run=True,
        )
        for seed in range(3):
            server.submit(seed=seed, class_label=0)
        results = server.run_until_drained()
        assert [r.result for r in results] == [None, None, None]
        report = server.report()
        assert report.requests_served == 3
        assert report.busy_s == pytest.approx(1.5)
        # No generation ran: the cache never built a model and the merged
        # stats stayed empty.
        assert server.cache.info()["models"] == 0
        assert report.merged_stats.dense_iterations == 0

    def test_simulated_reports_deterministic(self):
        def run():
            clock = FakeClock()
            server = make_server(
                policy=BatchingPolicy(max_batch_size=2),
                clock=clock,
                service_time=lambda batch: 0.25 * len(batch),
                dry_run=True,
            )
            for seed in range(5):
                clock.now = 0.1 * seed
                server.submit(seed=seed)
                server.step()
            server.run_until_drained()
            report = server.report()
            return (report.busy_s, report.queue_wait_s,
                    report.batches_served)

        assert run() == run()

    def test_report_returns_copy_of_aggregates(self):
        server = make_server()
        server.submit(seed=0)
        server.run_until_drained()
        report = server.report()
        report.merged_stats.ffn_sparsities.clear()
        assert server.report().merged_stats.ffn_sparsities

    def test_latency_accounting(self):
        clock = FakeClock()
        server = make_server(clock=clock)
        server.submit(seed=0)
        clock.now = 2.0
        (record,) = server.run_until_drained()
        assert record.wait_s == pytest.approx(2.0)
        assert record.latency_s == pytest.approx(
            record.wait_s + record.service_s
        )
