"""Shared fixtures for the serving-layer tests."""

import pytest

from repro.core.config import ExionConfig
from repro.models.zoo import build_model

FAST_ITERATIONS = 6


@pytest.fixture(scope="session")
def serve_dit_model():
    """Small DiT shared across read-only serving tests."""
    return build_model("dit", seed=0, total_iterations=FAST_ITERATIONS)


@pytest.fixture(scope="session")
def dit_config():
    return ExionConfig.for_model("dit")
