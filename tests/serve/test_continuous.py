"""Unit tests of the continuous scheduler's decision machinery.

Everything here runs the scheduler in ``dry_run`` mode (cursor-only
stand-ins, no numerics) under a hand-cranked clock, so each test pins
one decision rule: weighted-deficit fairness, priority preemption at
dense boundaries, aging-based starvation freedom, SLA admission and
expiry, and the boundary re-check that evicts expired *running*
requests. Output correctness of the same machinery is covered by the
differential suite in ``test_continuous_parity.py``.
"""

import pytest

from repro.core.config import ExionConfig
from repro.serve import (
    ContinuousPolicy,
    ContinuousServer,
    FairQueue,
    Priority,
    QueueEntry,
)
from repro.serve.request import GenerationRequest


class ManualClock:
    """A clock the test advances by hand."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


def _entry(
    request_id,
    tenant="default",
    priority=Priority.STANDARD,
    submitted_at=0.0,
    deadline_s=None,
):
    return QueueEntry(
        request=GenerationRequest(
            request_id=request_id,
            submitted_at=submitted_at,
            tenant=tenant,
            priority=priority,
            deadline_s=deadline_s,
        )
    )


def _dry_server(policy=None, tenant_weights=None, clock=None, iterations=6):
    """DiT "all" dry-run server: period-3 schedule, boundaries 0/3/6."""
    return ContinuousServer(
        "dit",
        config=ExionConfig.for_model("dit").ablation("all"),
        policy=policy,
        tenant_weights=tenant_weights,
        clock=clock if clock is not None else ManualClock(),
        dry_run=True,
        total_iterations=iterations,
    )


# ----------------------------------------------------------------------
# FairQueue: weighted deficit round-robin
# ----------------------------------------------------------------------
class TestFairQueue:
    def test_weighted_drr_serves_tenants_proportionally(self):
        """Weight 2:1 with unit costs admits in an a,a,b cycle."""
        queue = FairQueue(weights={"a": 2.0, "b": 1.0}, quantum=1.0)
        for i in range(6):
            queue.push(_entry(2 * i, tenant="a"))
            queue.push(_entry(2 * i + 1, tenant="b"))
        admitted = queue.select(
            now=0.0, slots=9, cost_fn=lambda e: 1.0,
            eligible_fn=lambda e: True,
        )
        order = [e.request.tenant for e in admitted]
        # Deterministic a,b,a cycle: "a" banks 2 credits per round and
        # wins twice, "b" once (the tie after a's first win breaks by
        # request id). Long-run service tracks the 2:1 weights.
        assert order == ["a", "b", "a"] * 3
        assert order.count("a") == 2 * order.count("b")

    def test_unknown_tenant_defaults_to_unit_weight(self):
        queue = FairQueue(weights={"a": 1.0})
        assert queue.weight("never-seen") == 1.0

    def test_non_positive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            FairQueue(weights={"a": 0.0})

    def test_deficit_forfeited_when_tenant_empties(self):
        """The DRR anti-hoarding rule: an emptied tenant restarts at 0."""
        queue = FairQueue(weights={"a": 4.0, "b": 1.0}, quantum=1.0)
        queue.push(_entry(0, tenant="a"))
        queue.push(_entry(1, tenant="b"))
        queue.select(
            now=0.0, slots=1, cost_fn=lambda e: 1.0,
            eligible_fn=lambda e: True,
        )
        # "a" won the slot and emptied; its residual credit (4 - 1 = 3)
        # must not persist to its next burst.
        assert queue._deficit["a"] == 0.0

    def test_select_skips_ineligible_entries(self):
        queue = FairQueue()
        queue.push(_entry(0))
        queue.push(_entry(1))
        admitted = queue.select(
            now=0.0, slots=2, cost_fn=lambda e: 1.0,
            eligible_fn=lambda e: e.request.request_id == 1,
        )
        assert [e.request.request_id for e in admitted] == [1]
        assert len(queue) == 1

    def test_higher_class_served_before_larger_deficit(self):
        """Priority classes dominate fairness: DRR only breaks ties
        within the top effective class."""
        queue = FairQueue(weights={"whale": 100.0})
        queue.push(_entry(0, tenant="whale", priority=Priority.BATCH))
        queue.push(_entry(1, tenant="minnow", priority=Priority.INTERACTIVE))
        admitted = queue.select(
            now=0.0, slots=1, cost_fn=lambda e: 1.0,
            eligible_fn=lambda e: True,
        )
        assert admitted[0].request.request_id == 1

    def test_expire_drops_timeouts_and_deadlines(self):
        queue = FairQueue()
        queue.push(_entry(0, submitted_at=0.0))  # survives
        queue.push(_entry(1, submitted_at=0.0, deadline_s=5.0))  # past deadline
        queue.push(_entry(2, submitted_at=-20.0))  # past timeout
        dropped = queue.expire(now=10.0, timeout_s=15.0)
        assert sorted(e.request.request_id for e in dropped) == [1, 2]
        assert [e.request.request_id for e in queue.entries()] == [0]

    def test_aging_promotes_up_to_interactive_cap(self):
        queue = FairQueue(aging_s=1.0)
        entry = _entry(0, priority=Priority.BATCH, submitted_at=0.0)
        assert queue.effective_priority(entry, now=0.0) == Priority.BATCH
        assert queue.effective_priority(entry, now=1.5) == Priority.STANDARD
        assert queue.effective_priority(entry, now=2.0) == Priority.INTERACTIVE
        # The cap: waiting longer never exceeds INTERACTIVE.
        assert queue.effective_priority(entry, now=99.0) == Priority.INTERACTIVE


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queue_depth_bound_rejects(self):
        server = _dry_server(policy=ContinuousPolicy(max_queue_depth=2))
        assert server.submit(seed=0) is not None
        assert server.submit(seed=1) is not None
        assert server.submit(seed=2) is None
        assert server.report().admission_rejects == 1

    def test_infeasible_deadline_rejected_at_door(self):
        clock = ManualClock(100.0)
        server = _dry_server(
            policy=ContinuousPolicy(min_service_s=5.0), clock=clock
        )
        # Even instant seating cannot finish by 100 + 1 < 100 + 5.
        assert server.submit(seed=0, deadline_s=101.0) is None
        assert server.submit(seed=1, deadline_s=110.0) is not None
        assert server.report().sla_rejects == 1

    def test_sla_sweep_drops_entries_that_became_infeasible(self):
        """A queued request whose deadline slipped out of reach is swept
        immediately (reason "sla") — it can never be seated again."""
        clock = ManualClock(0.0)
        server = _dry_server(
            policy=ContinuousPolicy(min_service_s=10.0), clock=clock
        )
        assert server.submit(seed=0, deadline_s=11.0) is not None
        clock.now = 2.0  # now + 10 > 11: infeasible before its deadline
        dropped = server.expire_queued(clock.now)
        assert [r.deadline_s for r in dropped] == [11.0]
        assert server.pop_dropped()[0][1] == "sla"
        assert server.report().requests_expired == 1


# ----------------------------------------------------------------------
# boundary-restricted joins
# ----------------------------------------------------------------------
class TestBoundaryJoins:
    def test_mid_phase_arrival_waits_for_dense_boundary(self):
        server = _dry_server()
        server.submit(seed=0)
        server.step()  # joins at cursor 0, ticks to 1
        server.submit(seed=1)
        server.step()  # cursor 1 -> 2: not a boundary, no join
        assert server.pending_count() == 1
        server.step()  # cursor 2 -> 3
        server.step()  # boundary at 3: the join happens here
        assert server.pending_count() == 0
        join = [e for e in server.events if e["kind"] == "join"][-1]
        assert join["cursor"] == 0
        assert join["active_cursors"] == (3,)

    def test_all_join_cursors_are_dense_boundaries(self):
        server = _dry_server()
        for i in range(5):
            server.submit(seed=i)
            server.step()
        server.run_until_drained()
        joins = [e for e in server.events if e["kind"] == "join"]
        assert len(joins) >= 5
        for event in joins:
            assert server.plan.is_boundary(event["cursor"])
            assert all(
                server.plan.is_boundary(c) for c in event["active_cursors"]
            )


# ----------------------------------------------------------------------
# preemption
# ----------------------------------------------------------------------
class TestPreemption:
    def _full_batch_of_batch_class(self, server):
        server.submit(seed=0, priority=Priority.BATCH)
        server.submit(seed=1, priority=Priority.BATCH)
        for _ in range(3):
            server.step()  # both runs reach cursor 3 (a boundary)

    def test_interactive_preempts_full_batch_at_boundary(self):
        server = _dry_server(policy=ContinuousPolicy(max_batch_size=2))
        self._full_batch_of_batch_class(server)
        interactive = server.submit(seed=2, priority=Priority.INTERACTIVE)
        server.step()  # boundary rebalance: evict one, seat interactive
        evict = [e for e in server.events if e["kind"] == "evict"][0]
        assert evict["reason"] == "preempt"
        assert evict["cursor"] == 3  # victim leaves mid-generation
        active_ids = {run.request_id for run in server.active}
        assert interactive in active_ids
        assert server.report().preemptions == 1
        # The victim resumes from its cursor and everyone completes.
        served = server.run_until_drained()
        assert sorted(r.request_id for r in served) == [0, 1, 2]
        resumed = [
            e for e in server.events
            if e["kind"] == "join" and e.get("resumed")
        ]
        assert len(resumed) == 1 and resumed[0]["cursor"] == 3

    def test_preemption_disabled_makes_interactive_wait(self):
        server = _dry_server(
            policy=ContinuousPolicy(max_batch_size=2, preempt=False)
        )
        self._full_batch_of_batch_class(server)
        server.submit(seed=2, priority=Priority.INTERACTIVE)
        server.step()  # boundary, but preemption is off
        assert server.report().preemptions == 0
        assert server.pending_count() == 1

    def test_equal_priority_never_preempts(self):
        server = _dry_server(policy=ContinuousPolicy(max_batch_size=2))
        self._full_batch_of_batch_class(server)
        server.submit(seed=2, priority=Priority.BATCH)
        server.step()
        assert server.report().preemptions == 0


# ----------------------------------------------------------------------
# starvation freedom via aging
# ----------------------------------------------------------------------
class TestAging:
    def _race(self, aging_s):
        """A BATCH request races a later INTERACTIVE one for one slot."""
        clock = ManualClock(0.0)
        server = _dry_server(
            policy=ContinuousPolicy(max_batch_size=1, aging_s=aging_s),
            clock=clock,
        )
        batch_id = server.submit(seed=0, priority=Priority.BATCH)
        clock.now = 5.0  # the BATCH request has waited 5s
        interactive_id = server.submit(seed=1, priority=Priority.INTERACTIVE)
        server.step(now=clock.now)
        (winner,) = server.active
        return batch_id, interactive_id, winner.request_id

    def test_aged_batch_request_wins_the_slot(self):
        batch_id, _, winner = self._race(aging_s=1.0)
        # 5s at aging_s=1 promotes BATCH to the INTERACTIVE class; the
        # tie breaks toward the earlier submission.
        assert winner == batch_id

    def test_without_aging_interactive_always_wins(self):
        _, interactive_id, winner = self._race(aging_s=None)
        assert winner == interactive_id


# ----------------------------------------------------------------------
# deadline re-check at boundaries (queued AND running requests)
# ----------------------------------------------------------------------
class TestDeadlineEviction:
    def test_expired_active_run_evicted_at_boundary(self):
        clock = ManualClock(0.0)
        server = _dry_server(clock=clock)
        server.submit(seed=0, deadline_s=2.0)
        server.step(now=0.0)  # join at 0, tick to 1
        clock.now = 3.0  # deadline passes mid-phase
        server.step(now=3.0)  # cursor 1 -> 2: no boundary, still running
        assert server.active
        server.step(now=3.0)  # cursor 2 -> 3
        server.step(now=3.0)  # boundary at 3: evicted, not served
        assert not server.active
        report = server.report()
        assert report.deadline_evictions == 1
        assert report.requests_served == 0
        (dropped,) = server.pop_dropped()
        assert dropped[1] == "deadline"

    def test_expired_queued_request_dropped_not_seated(self):
        clock = ManualClock(0.0)
        server = _dry_server(clock=clock)
        server.submit(seed=0, deadline_s=1.0)
        clock.now = 2.0
        server.step(now=2.0)
        assert not server.active
        assert server.pop_dropped()[0][1] == "deadline"


# ----------------------------------------------------------------------
# server-level fairness and reporting
# ----------------------------------------------------------------------
class TestServerFairness:
    def test_tenant_weights_shape_admission_order(self):
        server = _dry_server(
            policy=ContinuousPolicy(max_batch_size=1),
            tenant_weights={"a": 2.0, "b": 1.0},
        )
        for i in range(4):
            server.submit(seed=2 * i, tenant="a")
            server.submit(seed=2 * i + 1, tenant="b")
        server.run_until_drained()
        joins = [e for e in server.events if e["kind"] == "join"]
        tenants = [
            "a" if e["request_id"] % 2 == 0 else "b" for e in joins
        ]
        assert tenants[:6] == ["a", "b", "a", "a", "b", "a"]
        assert tenants[:6].count("a") == 2 * tenants[:6].count("b")


class TestReporting:
    def test_occupancy_and_counters(self):
        server = _dry_server(policy=ContinuousPolicy(max_batch_size=4))
        for i in range(3):
            server.submit(seed=i)
        served = server.run_until_drained()
        report = server.report()
        assert len(served) == 3
        assert report.requests_served == 3
        assert report.ticks == 6  # all three share every iteration
        assert report.mean_occupancy == pytest.approx(3.0)
        assert report.joins == 3
        summary = report.summary()
        for key in (
            "ticks", "mean_occupancy", "joins", "preemptions",
            "admission_rejects", "sla_rejects", "deadline_evictions",
        ):
            assert key in summary

    def test_tick_time_hook_drives_simulated_timing(self):
        server = ContinuousServer(
            "dit",
            config=ExionConfig.for_model("dit").ablation("all"),
            clock=ManualClock(),
            dry_run=True,
            total_iterations=6,
            tick_time=lambda batch, dense: 2.0 if dense else 0.5,
        )
        server.submit(seed=0)
        server.step()
        assert server.last_tick_s == 2.0  # cursor 0 is a dense compile
        server.step()
        assert server.last_tick_s == 0.5
        report = server.report()
        assert report.timing_source == "simulated"
        assert report.busy_s == pytest.approx(2.5)


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch_size": 0},
            {"quantum": 0.0},
            {"aging_s": 0.0},
            {"timeout_s": -1.0},
            {"max_queue_depth": 0},
            {"min_service_s": -0.1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ContinuousPolicy(**kwargs)
