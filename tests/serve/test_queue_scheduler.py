"""Scheduler edge cases: empty queue, batch of one, max-wait policy."""

import pytest

from repro.serve.queue import RequestQueue
from repro.serve.request import GenerationRequest
from repro.serve.scheduler import BatchingPolicy, MicroBatch, Scheduler


class TestRequestQueue:
    def test_starts_empty(self):
        queue = RequestQueue()
        assert len(queue) == 0
        assert queue.is_empty
        assert queue.oldest_wait(now=100.0) == 0.0
        assert queue.pop(8) == []

    def test_submit_assigns_sequential_ids(self):
        queue = RequestQueue()
        first = queue.submit(seed=3)
        second = queue.submit(seed=9)
        assert (first.request_id, second.request_id) == (0, 1)
        assert queue.total_submitted == 2

    def test_fifo_pop(self):
        queue = RequestQueue()
        for seed in (5, 6, 7):
            queue.submit(seed=seed)
        batch = queue.pop(2)
        assert [r.seed for r in batch] == [5, 6]
        assert len(queue) == 1

    def test_pop_validates_size(self):
        with pytest.raises(ValueError):
            RequestQueue().pop(0)

    def test_oldest_wait_tracks_head(self):
        queue = RequestQueue()
        queue.submit(seed=1, now=10.0)
        queue.submit(seed=2, now=14.0)
        assert queue.oldest_wait(now=15.0) == pytest.approx(5.0)
        queue.pop(1)
        assert queue.oldest_wait(now=15.0) == pytest.approx(1.0)

    def test_submit_request_passthrough(self):
        queue = RequestQueue()
        request = GenerationRequest(request_id=77, seed=1)
        queue.submit_request(request)
        assert queue.pop(1) == [request]

    def test_expire_drops_only_stale_requests(self):
        queue = RequestQueue()
        queue.submit(seed=0, now=0.0)
        queue.submit(seed=1, now=5.0)
        queue.submit(seed=2, now=9.0)
        expired = queue.expire(now=10.0, timeout_s=4.0)
        assert [r.seed for r in expired] == [0, 1]
        # Survivors keep FIFO order and stay poppable.
        assert [r.seed for r in queue.pop(8)] == [2]

    def test_expire_noop_when_within_timeout(self):
        queue = RequestQueue()
        queue.submit(seed=0, now=0.0)
        assert queue.expire(now=1.0, timeout_s=1.0) == []  # > not >=
        assert len(queue) == 1

    def test_expire_rejects_negative_timeout(self):
        with pytest.raises(ValueError):
            RequestQueue().expire(now=0.0, timeout_s=-1.0)


class TestBatchingPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ValueError):
            BatchingPolicy(max_wait_s=-1.0)

    def test_defaults(self):
        policy = BatchingPolicy()
        assert policy.max_batch_size == 8
        assert policy.max_wait_s == 0.0


class TestScheduler:
    def test_empty_queue_never_ready(self):
        scheduler = Scheduler(RequestQueue(), BatchingPolicy(max_wait_s=0.0))
        assert not scheduler.ready(now=1e9)
        assert scheduler.next_batch(now=1e9) is None
        assert list(scheduler.drain()) == []
        assert scheduler.batches_formed == 0

    def test_batch_of_one_dispatches_greedily(self):
        queue = RequestQueue()
        scheduler = Scheduler(queue, BatchingPolicy(max_batch_size=8))
        queue.submit(seed=42)
        batch = scheduler.next_batch(now=0.0)
        assert isinstance(batch, MicroBatch)
        assert len(batch) == 1
        assert batch.seeds == (42,)
        assert queue.is_empty

    def test_partial_batch_waits_for_max_wait(self):
        queue = RequestQueue()
        scheduler = Scheduler(
            queue, BatchingPolicy(max_batch_size=4, max_wait_s=2.0)
        )
        queue.submit(seed=0, now=10.0)
        assert scheduler.next_batch(now=11.0) is None  # 1s < max_wait
        batch = scheduler.next_batch(now=12.0)  # 2s >= max_wait
        assert batch is not None and len(batch) == 1

    def test_full_batch_dispatches_before_max_wait(self):
        queue = RequestQueue()
        scheduler = Scheduler(
            queue, BatchingPolicy(max_batch_size=2, max_wait_s=60.0)
        )
        queue.submit(seed=0, now=0.0)
        assert scheduler.next_batch(now=0.0) is None
        queue.submit(seed=1, now=0.0)
        batch = scheduler.next_batch(now=0.0)
        assert batch is not None and len(batch) == 2

    def test_batch_size_capped(self):
        queue = RequestQueue()
        scheduler = Scheduler(queue, BatchingPolicy(max_batch_size=3))
        for seed in range(7):
            queue.submit(seed=seed)
        sizes = [len(b) for b in scheduler.drain()]
        assert sizes == [3, 3, 1]
        assert scheduler.batches_formed == 3

    def test_drain_preserves_fifo_order(self):
        queue = RequestQueue()
        scheduler = Scheduler(queue, BatchingPolicy(max_batch_size=4))
        for seed in range(6):
            queue.submit(seed=seed)
        seeds = [s for batch in scheduler.drain() for s in batch.seeds]
        assert seeds == list(range(6))


class TestSchedulerEdgeCases:
    """The batching-policy corners the cluster event loop leans on."""

    def test_zero_max_wait_dispatches_whatever_is_queued(self):
        # max_wait=0 degenerates to greedy batching: every next_batch call
        # with a non-empty queue dispatches immediately, even a batch of 1.
        queue = RequestQueue()
        scheduler = Scheduler(
            queue, BatchingPolicy(max_batch_size=8, max_wait_s=0.0)
        )
        queue.submit(seed=0, now=100.0)
        batch = scheduler.next_batch(now=100.0)  # zero elapsed wait
        assert batch is not None and len(batch) == 1

    def test_queue_smaller_than_max_batch_waits_then_flushes_partial(self):
        queue = RequestQueue()
        scheduler = Scheduler(
            queue, BatchingPolicy(max_batch_size=8, max_wait_s=3.0)
        )
        for seed in range(3):  # 3 < max_batch_size
            queue.submit(seed=seed, now=0.0)
        assert scheduler.next_batch(now=2.9) is None
        batch = scheduler.next_batch(now=3.0)
        assert batch is not None and batch.seeds == (0, 1, 2)
        assert queue.is_empty

    def test_burst_larger_than_max_batch_splits_into_full_batches(self):
        queue = RequestQueue()
        scheduler = Scheduler(
            queue, BatchingPolicy(max_batch_size=4, max_wait_s=60.0)
        )
        for seed in range(11):  # burst of 11 > max_batch_size
            queue.submit(seed=seed, now=0.0)
        sizes = []
        while (batch := scheduler.next_batch(now=0.0)) is not None:
            sizes.append(len(batch))
        # Two full batches fire immediately; the tail of 3 waits out
        # max_wait before a third call would dispatch it.
        assert sizes == [4, 4]
        assert len(queue) == 3
        tail = scheduler.next_batch(now=60.0)
        assert tail is not None and tail.seeds == (8, 9, 10)

    def test_fifo_preserved_under_interleaved_coalescing(self):
        # Submissions interleave with dispatches; coalescing must never
        # reorder requests across or within micro-batches.
        queue = RequestQueue()
        scheduler = Scheduler(
            queue, BatchingPolicy(max_batch_size=3, max_wait_s=0.0)
        )
        order = []
        queue.submit(seed=0)
        queue.submit(seed=1)
        order.extend(scheduler.next_batch(now=0.0).seeds)
        for seed in (2, 3, 4, 5):
            queue.submit(seed=seed)
        order.extend(scheduler.next_batch(now=1.0).seeds)
        queue.submit(seed=6)
        order.extend(scheduler.next_batch(now=2.0).seeds)
        assert order == list(range(7))
        assert scheduler.batches_formed == 3
