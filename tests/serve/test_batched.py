"""BatchedPipeline equivalence with sequential ExionPipeline runs.

The serving layer's core guarantee: batching is a pure throughput
optimization. Each request of a micro-batch — whatever the batch's
composition — produces the same sample and the same statistics as a
sequential ``ExionPipeline.generate()`` call with that request's inputs.
"""

import numpy as np
import pytest

from repro.core.config import ExionConfig
from repro.core.pipeline import ExionPipeline
from repro.core.thresholds import ThresholdCalibrator
from repro.models.zoo import build_model
from repro.serve.batched import BatchedPipeline
from repro.serve.request import GenerationRequest


def assert_stats_equal(got, want):
    assert got.summary() == want.summary()
    assert got.ffn_layer1.computed == want.ffn_layer1.computed
    assert got.ffn_layer2.computed == want.ffn_layer2.computed
    assert got.attention_scores.computed == want.attention_scores.computed
    assert got.q_projection.computed == want.q_projection.computed
    assert got.kv_projection.computed == want.kv_projection.computed
    assert got.ffn_sparsities == want.ffn_sparsities
    assert got.attention_sparsities == want.attention_sparsities
    assert got.prediction_overhead_macs == want.prediction_overhead_macs


class TestBatchOfOne:
    @pytest.mark.parametrize("ablation", ["base", "ep", "ffnr", "all"])
    def test_bit_for_bit_vs_sequential(self, serve_dit_model, dit_config,
                                       ablation):
        config = dit_config.ablation(ablation)
        want = ExionPipeline(serve_dit_model, config).generate(
            seed=11, class_label=4
        )
        got = BatchedPipeline(serve_dit_model, config).generate(
            seed=11, class_label=4
        )
        assert np.array_equal(got.sample, want.sample)
        assert_stats_equal(got.stats, want.stats)

    def test_empty_batch_rejected(self, serve_dit_model, dit_config):
        with pytest.raises(ValueError):
            BatchedPipeline(serve_dit_model, dit_config).run_batch([])
        with pytest.raises(ValueError):
            BatchedPipeline(serve_dit_model, dit_config).generate_batch([])


class TestHeterogeneousBatch:
    def test_mixed_seeds_match_sequential(self, serve_dit_model, dit_config):
        seeds = [3, 11, 42, 5, 8]
        sequential = ExionPipeline(serve_dit_model, dit_config)
        want = [sequential.generate(seed=s, class_label=7) for s in seeds]
        samples, got = BatchedPipeline(
            serve_dit_model, dit_config
        ).generate_batch(seeds, class_label=7)
        assert samples.shape == (len(seeds),) + want[0].sample.shape
        for g, w in zip(got, want):
            assert np.array_equal(g.sample, w.sample)
            assert_stats_equal(g.stats, w.stats)

    def test_mixed_class_labels_match_sequential(self, serve_dit_model,
                                                 dit_config):
        requests = [
            GenerationRequest(request_id=i, seed=seed, class_label=label)
            for i, (seed, label) in enumerate([(1, 0), (1, 9), (2, 0), (7, 3)])
        ]
        sequential = ExionPipeline(serve_dit_model, dit_config)
        want = [
            sequential.generate(seed=r.seed, class_label=r.class_label)
            for r in requests
        ]
        got = BatchedPipeline(serve_dit_model, dit_config).run_batch(requests)
        for g, w in zip(got, want):
            assert np.array_equal(g.sample, w.sample)

    def test_mixed_prompts_cross_attention_model(self):
        model = build_model("mld", seed=0, total_iterations=5)
        config = ExionConfig.for_model("mld")
        prompts = ["a person walks", "a person jumps high", "spin"]
        sequential = ExionPipeline(model, config)
        want = [sequential.generate(seed=i, prompt=p)
                for i, p in enumerate(prompts)]
        requests = [
            GenerationRequest(request_id=i, seed=i, prompt=p)
            for i, p in enumerate(prompts)
        ]
        got = BatchedPipeline(model, config).run_batch(requests)
        for g, w in zip(got, want):
            assert np.array_equal(g.sample, w.sample)
            assert_stats_equal(g.stats, w.stats)

    def test_resblock_unet_model(self):
        model = build_model("stable_diffusion", seed=0, total_iterations=5)
        config = ExionConfig.for_model("stable_diffusion")
        sequential = ExionPipeline(model, config)
        want = [sequential.generate(seed=s, prompt="a wave") for s in (0, 4)]
        _, got = BatchedPipeline(model, config).generate_batch(
            [0, 4], prompt="a wave"
        )
        for g, w in zip(got, want):
            assert np.array_equal(g.sample, w.sample)


class TestRunStatsIsolation:
    def test_each_request_gets_distinct_stats(self, serve_dit_model,
                                              dit_config):
        _, results = BatchedPipeline(
            serve_dit_model, dit_config
        ).generate_batch([1, 2, 3], class_label=0)
        stats_objects = [r.stats for r in results]
        assert len({id(s) for s in stats_objects}) == 3
        # Different seeds see different data, so the attention sparsity
        # observations differ between requests (FFN sparsity is pinned to
        # the quantile target and thus equal by construction).
        assert (stats_objects[0].attention_sparsities
                != stats_objects[1].attention_sparsities)
        # But the op accounting structure is identical (same model/config).
        assert (stats_objects[0].ffn_layer1.dense
                == stats_objects[1].ffn_layer1.dense)

    def test_mutating_one_result_leaves_others_intact(self, serve_dit_model,
                                                      dit_config):
        _, results = BatchedPipeline(
            serve_dit_model, dit_config
        ).generate_batch([1, 2], class_label=0)
        before = list(results[1].stats.ffn_sparsities)
        results[0].stats.ffn_sparsities.clear()
        results[0].stats.ffn_layer1.add(10, 5)
        assert results[1].stats.ffn_sparsities == before


class TestOptionalPaths:
    def test_threshold_table_parity(self, serve_dit_model, dit_config):
        calibrator = ThresholdCalibrator(
            target_sparsity=dit_config.ffn_target_sparsity,
            dense_period=dit_config.sparse_iters_n + 1,
        )
        table = calibrator.calibrate(serve_dit_model, seed=0)
        want = ExionPipeline(
            serve_dit_model, dit_config, threshold_table=table
        ).generate(seed=5, class_label=1)
        got = BatchedPipeline(
            serve_dit_model, dit_config, threshold_table=table
        ).generate(seed=5, class_label=1)
        assert np.array_equal(got.sample, want.sample)
        assert_stats_equal(got.stats, want.stats)

    def test_activation_bits_parity(self, serve_dit_model, dit_config):
        want = ExionPipeline(
            serve_dit_model, dit_config, activation_bits=12
        ).generate(seed=2, class_label=3)
        _, got = BatchedPipeline(
            serve_dit_model, dit_config, activation_bits=12
        ).generate_batch([9, 2], class_label=3)
        assert np.array_equal(got[1].sample, want.sample)

    def test_collect_masks_parity(self, serve_dit_model, dit_config):
        want = ExionPipeline(
            serve_dit_model, dit_config, collect_masks=True
        ).generate(seed=1, class_label=2)
        got = BatchedPipeline(
            serve_dit_model, dit_config, collect_masks=True
        ).generate(seed=1, class_label=2)
        assert len(got.stats.ffn_bitmasks) == len(want.stats.ffn_bitmasks)
        for g, w in zip(got.stats.ffn_bitmasks, want.stats.ffn_bitmasks):
            assert g == w
        assert len(got.stats.attention_keepmasks) == len(
            want.stats.attention_keepmasks
        )
        for g, w in zip(got.stats.attention_keepmasks,
                        want.stats.attention_keepmasks):
            assert np.array_equal(g, w)

    def test_generate_batch_delegation_from_core(self, serve_dit_model,
                                                 dit_config):
        pipeline = ExionPipeline(serve_dit_model, dit_config)
        loop_samples, _ = pipeline.generate_batch([4, 6], class_label=2)
        batched_samples, _ = pipeline.generate_batch(
            [4, 6], class_label=2, batched=True
        )
        assert np.array_equal(loop_samples, batched_samples)

    def test_vanilla_delegation_matches_generate_vanilla(self,
                                                         serve_dit_model,
                                                         dit_config):
        pipeline = ExionPipeline(serve_dit_model, dit_config)
        want = pipeline.generate_vanilla(seed=3, class_label=1)
        samples, results = pipeline.generate_batch(
            [3], class_label=1, vanilla=True, batched=True
        )
        assert np.array_equal(samples[0], want.sample)
        assert results[0].stats.summary() == want.stats.summary()
