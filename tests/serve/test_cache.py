"""ThresholdCache memoization behavior."""

import pytest

from repro.core import thresholds as thresholds_module
from repro.core.config import ExionConfig
from repro.models.zoo import model_cache_key
from repro.serve.cache import ThresholdCache

FAST = {"total_iterations": 6}


class TestModelCacheKey:
    def test_round_trip(self):
        key = model_cache_key("dit", seed=1, total_iterations=9)
        assert key == ("dit", 1, 9, None)

    def test_unknown_model_rejected(self):
        with pytest.raises(KeyError):
            model_cache_key("resnet50")


class TestModelMemo:
    def test_same_key_returns_same_object(self):
        cache = ThresholdCache()
        first = cache.model("dit", **FAST)
        second = cache.model("dit", **FAST)
        assert first is second
        assert cache.info()["models"] == 1
        assert cache.info() == {
            "models": 1, "tables": 0, "pipelines": 0, "hits": 1, "misses": 1,
            "capacity": -1, "evictions": 0,
            "model_hits": 1, "model_misses": 1, "model_evictions": 0,
            "table_hits": 0, "table_misses": 0, "table_evictions": 0,
            "pipeline_hits": 0, "pipeline_misses": 0, "pipeline_evictions": 0,
        }
        # keys come out sorted so diffs of two runs line up
        assert list(cache.info()) == sorted(cache.info())

    def test_different_key_builds_new_model(self):
        cache = ThresholdCache()
        a = cache.model("dit", **FAST)
        b = cache.model("dit", seed=1, **FAST)
        c = cache.model("mdm", **FAST)
        assert a is not b and a is not c
        assert cache.info()["models"] == 3


class TestTableMemo:
    def test_calibration_runs_once(self, monkeypatch):
        calls = []
        original = thresholds_module.ThresholdCalibrator.calibrate

        def counting(self, model, seed=0, prompt=None):
            calls.append(seed)
            return original(self, model, seed=seed, prompt=prompt)

        monkeypatch.setattr(
            thresholds_module.ThresholdCalibrator, "calibrate", counting
        )
        cache = ThresholdCache()
        config = ExionConfig.for_model("dit")
        first = cache.table("dit", config, **FAST)
        second = cache.table("dit", config, **FAST)
        assert first is second
        assert calls == [0]

    def test_table_shared_across_ep_ablations(self):
        cache = ThresholdCache()
        config = ExionConfig.for_model("dit")
        ffnr_only = cache.table("dit", config.ablation("ffnr"), **FAST)
        both = cache.table("dit", config.ablation("all"), **FAST)
        assert ffnr_only is both

    def test_table_not_shared_across_schedules(self):
        cache = ThresholdCache()
        config = ExionConfig.for_model("dit")
        from dataclasses import replace

        other = replace(config, sparse_iters_n=config.sparse_iters_n + 1)
        assert cache.table("dit", config, **FAST) is not cache.table(
            "dit", other, **FAST
        )


class TestPipelineMemo:
    def test_pipeline_reused_for_same_config(self):
        cache = ThresholdCache()
        config = ExionConfig.for_model("dit")
        first = cache.pipeline("dit", config, **FAST)
        second = cache.pipeline("dit", config, **FAST)
        assert first is second

    def test_distinct_pipeline_per_config(self):
        cache = ThresholdCache()
        config = ExionConfig.for_model("dit")
        assert cache.pipeline("dit", config, **FAST) is not cache.pipeline(
            "dit", config.ablation("ffnr"), **FAST
        )

    def test_default_config_resolves_for_model(self):
        cache = ThresholdCache()
        pipeline = cache.pipeline("dit", **FAST)
        assert pipeline.config == ExionConfig.for_model("dit")

    def test_calibrated_pipeline_gets_table(self):
        cache = ThresholdCache()
        pipeline = cache.pipeline("dit", calibrate=True, **FAST)
        assert pipeline.threshold_table is not None
        assert len(pipeline.threshold_table) > 0
        uncalibrated = cache.pipeline("dit", **FAST)
        assert uncalibrated.threshold_table is None
        assert uncalibrated is not pipeline

    def test_calibrate_without_ffn_reuse_skips_table(self):
        cache = ThresholdCache()
        config = ExionConfig.for_model("dit").ablation("ep")
        pipeline = cache.pipeline("dit", config, calibrate=True, **FAST)
        assert pipeline.threshold_table is None
        assert cache.info()["tables"] == 0

    def test_clear_drops_everything(self):
        cache = ThresholdCache()
        cache.pipeline("dit", **FAST)
        cache.clear()
        info = cache.info()
        assert (info["models"], info["tables"], info["pipelines"]) == (0, 0, 0)


class TestLRUCapacity:
    def test_unbounded_by_default(self):
        cache = ThresholdCache()
        assert cache.capacity is None
        for seed in range(4):
            cache.model("dit", seed=seed, **FAST)
        assert cache.info()["models"] == 4
        assert cache.info()["evictions"] == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ThresholdCache(capacity=0)

    def test_eviction_past_capacity(self):
        cache = ThresholdCache(capacity=2)
        a = cache.model("dit", seed=0, **FAST)
        cache.model("dit", seed=1, **FAST)
        cache.model("dit", seed=2, **FAST)  # evicts seed=0
        info = cache.info()
        assert info["models"] == 2
        assert info["evictions"] == 1
        assert info["model_evictions"] == 1
        # seed=0 was evicted: re-requesting it is a miss and a rebuild
        rebuilt = cache.model("dit", seed=0, **FAST)
        assert rebuilt is not a

    def test_hit_refreshes_recency(self):
        cache = ThresholdCache(capacity=2)
        a = cache.model("dit", seed=0, **FAST)
        cache.model("dit", seed=1, **FAST)
        cache.model("dit", seed=0, **FAST)  # refresh seed=0 → seed=1 is LRU
        cache.model("dit", seed=2, **FAST)  # evicts seed=1, not seed=0
        assert cache.model("dit", seed=0, **FAST) is a
        assert cache.level_evictions["model"] == 1

    def test_each_level_bounded_independently(self):
        cache = ThresholdCache(capacity=1)
        config = ExionConfig.for_model("dit")
        cache.pipeline("dit", config, **FAST)
        cache.pipeline("dit", config.ablation("ffnr"), **FAST)
        info = cache.info()
        # one model (same key both times) but two pipeline insertions
        assert info["models"] == 1
        assert info["pipelines"] == 1
        assert info["pipeline_evictions"] == 1
        assert info["model_evictions"] == 0

    def test_eviction_counts_in_summary_flow(self):
        cache = ThresholdCache(capacity=1)
        cache.model("dit", seed=0, **FAST)
        cache.model("dit", seed=1, **FAST)
        info = cache.info()
        assert info["capacity"] == 1
        assert info["evictions"] == 1
        assert list(info) == sorted(info)
