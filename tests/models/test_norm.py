"""Unit tests for normalization layers."""

import numpy as np
import pytest

from repro.models.norm import AdaLNModulation, LayerNorm


class TestLayerNorm:
    def test_output_has_zero_mean_unit_var(self, rng):
        norm = LayerNorm(16)
        out = norm(rng.standard_normal((4, 16)) * 5 + 3)
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(out.var(axis=-1), np.ones(4), atol=1e-3)

    def test_gamma_beta_applied(self, rng):
        norm = LayerNorm(8)
        norm.gamma = np.full(8, 2.0)
        norm.beta = np.full(8, 1.0)
        out = norm(rng.standard_normal((3, 8)))
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(3), atol=1e-10)

    def test_rejects_wrong_dim(self):
        with pytest.raises(ValueError):
            LayerNorm(8)(np.zeros((2, 9)))

    def test_rejects_nonpositive_dim(self):
        with pytest.raises(ValueError):
            LayerNorm(0)

    def test_constant_input_is_stable(self):
        out = LayerNorm(4)(np.full((2, 4), 7.0))
        assert np.all(np.isfinite(out))


class TestAdaLN:
    def test_shapes(self, rng):
        mod = AdaLNModulation(embed_dim=16, dim=8, rng=rng)
        shift, scale, gate = mod(rng.standard_normal(16))
        assert shift.shape == (8,)
        assert scale.shape == (8,)
        assert gate.shape == (8,)

    def test_scale_bounded(self, rng):
        mod = AdaLNModulation(16, 8, rng)
        _, scale, gate = mod(rng.standard_normal(16) * 100)
        assert np.all(np.abs(scale) <= 1.0)
        assert np.all(gate > 0.0)

    def test_varies_with_timestep_embedding(self, rng):
        mod = AdaLNModulation(16, 8, rng)
        s1, _, _ = mod(np.zeros(16) + 1.0)
        s2, _, _ = mod(np.zeros(16) - 1.0)
        assert not np.allclose(s1, s2)
