"""Unit tests for the feed-forward network."""

import numpy as np
import pytest

from repro.models.activations import gelu, geglu
from repro.models.ffn import FeedForward, FFNTrace


class TestFeedForward:
    def test_output_shape(self, rng):
        ffn = FeedForward(8, 32, rng)
        out, trace = ffn(rng.standard_normal((5, 8)))
        assert out.shape == (5, 8)
        assert trace.hidden.shape == (5, 32)

    def test_matches_manual_gelu_path(self, rng):
        ffn = FeedForward(4, 16, rng)
        x = rng.standard_normal((3, 4))
        hidden = gelu(ffn.linear1(x))
        expected = ffn.linear2(hidden)
        out, trace = ffn(x)
        np.testing.assert_allclose(out, expected)
        np.testing.assert_allclose(trace.hidden, hidden)

    def test_geglu_first_linear_is_doubled(self, rng):
        ffn = FeedForward(4, 16, rng, activation="geglu")
        assert ffn.linear1.out_features == 32
        out, trace = ffn(rng.standard_normal((3, 4)))
        assert out.shape == (3, 4)
        assert trace.hidden.shape == (3, 16)

    def test_geglu_matches_manual(self, rng):
        ffn = FeedForward(4, 8, rng, activation="geglu")
        x = rng.standard_normal((2, 4))
        pre = ffn.linear1(x)
        value, gate = np.split(pre, 2, axis=-1)
        expected = ffn.linear2(geglu(value, gate))
        out, _ = ffn(x)
        np.testing.assert_allclose(out, expected)

    def test_rejects_unknown_activation(self, rng):
        with pytest.raises(ValueError, match="unsupported"):
            FeedForward(4, 8, rng, activation="relu6")

    def test_executor_hook_overrides(self, rng):
        ffn = FeedForward(4, 8, rng)

        def executor(layer, x):
            return np.ones_like(x), FFNTrace(hidden=np.zeros((x.shape[0], 8)))

        out, _ = ffn(rng.standard_normal((3, 4)), executor=executor)
        np.testing.assert_array_equal(out, np.ones((3, 4)))

    def test_macs(self, rng):
        ffn = FeedForward(4, 8, rng)
        assert ffn.macs(tokens=3) == 3 * 4 * 8 + 3 * 8 * 4

    def test_trace_records_totals(self, rng):
        ffn = FeedForward(4, 8, rng)
        _, trace = ffn(rng.standard_normal((3, 4)))
        assert trace.total_hidden_elements == 24
        assert not trace.reused_from_dense
