"""Unit tests for the Linear layer."""

import numpy as np
import pytest

from repro.models.linear import Linear


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(8, 12, rng)
        out = layer(np.zeros((5, 8)))
        assert out.shape == (5, 12)

    def test_matches_manual_matmul(self, rng):
        layer = Linear(4, 3, rng)
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(layer(x), x @ layer.weight + layer.bias)

    def test_no_bias(self, rng):
        layer = Linear(4, 3, rng, bias=False)
        assert layer.bias is None
        x = rng.standard_normal((2, 4))
        np.testing.assert_allclose(layer(x), x @ layer.weight)

    def test_rejects_wrong_input_dim(self, rng):
        layer = Linear(4, 3, rng)
        with pytest.raises(ValueError, match="expected last dim"):
            layer(np.zeros((2, 5)))

    def test_rejects_nonpositive_dims(self, rng):
        with pytest.raises(ValueError):
            Linear(0, 3, rng)
        with pytest.raises(ValueError):
            Linear(3, -1, rng)

    def test_deterministic_given_seed(self):
        a = Linear(6, 6, np.random.default_rng(7))
        b = Linear(6, 6, np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight, b.weight)

    def test_num_params(self, rng):
        layer = Linear(4, 3, rng)
        assert layer.num_params == 4 * 3 + 3
        assert Linear(4, 3, rng, bias=False).num_params == 12

    def test_macs(self, rng):
        assert Linear(4, 3, rng).macs(tokens=10) == 120

    def test_xavier_bound(self, rng):
        layer = Linear(100, 100, rng)
        bound = np.sqrt(6.0 / 200)
        assert np.max(np.abs(layer.weight)) <= bound

    def test_works_on_batched_input(self, rng):
        layer = Linear(4, 3, rng)
        out = layer(rng.standard_normal((2, 5, 4)))
        assert out.shape == (2, 5, 3)
