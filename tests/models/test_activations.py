"""Unit tests for activation functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models.activations import gelu, geglu, relu, silu, softmax


class TestGelu:
    def test_zero_maps_to_zero(self):
        assert gelu(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_large_positive_is_identity(self):
        x = np.array([10.0])
        assert gelu(x)[0] == pytest.approx(10.0, rel=1e-6)

    def test_large_negative_is_near_zero(self):
        assert abs(gelu(np.array([-10.0]))[0]) < 1e-6

    def test_monotone_on_positive_axis(self):
        x = np.linspace(0.0, 5.0, 100)
        y = gelu(x)
        assert np.all(np.diff(y) > 0)

    def test_matches_erf_form_closely(self):
        from scipy.special import erf

        x = np.linspace(-4, 4, 200)
        exact = 0.5 * x * (1.0 + erf(x / np.sqrt(2)))
        assert np.max(np.abs(gelu(x) - exact)) < 5e-3

    def test_preserves_shape(self):
        x = np.zeros((3, 5, 7))
        assert gelu(x).shape == (3, 5, 7)


class TestGeglu:
    def test_is_value_times_gelu_gate(self):
        value = np.array([2.0, -1.0])
        gate = np.array([1.0, 3.0])
        np.testing.assert_allclose(geglu(value, gate), value * gelu(gate))

    def test_zero_gate_kills_output(self):
        value = np.array([100.0])
        np.testing.assert_allclose(geglu(value, np.array([0.0])), [0.0])


class TestSiluRelu:
    def test_silu_at_zero(self):
        assert silu(np.array([0.0]))[0] == pytest.approx(0.0)

    def test_silu_saturates_to_identity(self):
        assert silu(np.array([20.0]))[0] == pytest.approx(20.0, rel=1e-6)

    def test_relu_clamps_negatives(self):
        np.testing.assert_array_equal(
            relu(np.array([-1.0, 0.0, 2.0])), [0.0, 0.0, 2.0]
        )


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.standard_normal((4, 9))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), np.ones(4))

    def test_invariant_to_shift(self, rng):
        x = rng.standard_normal((3, 5))
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_handles_large_values(self):
        x = np.array([[1000.0, 1000.0]])
        np.testing.assert_allclose(softmax(x), [[0.5, 0.5]])

    def test_axis_zero(self, rng):
        x = rng.standard_normal((6, 3))
        np.testing.assert_allclose(softmax(x, axis=0).sum(axis=0), np.ones(3))

    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_output_in_simplex(self, values):
        probs = softmax(np.array(values))
        assert np.all(probs >= 0)
        assert probs.sum() == pytest.approx(1.0)
