"""Unit tests for the conditioning encoder."""

import numpy as np

from repro.models.conditioning import (
    ConditioningEncoder,
    hash_tokenize,
    make_conditioning,
)


class TestHashTokenize:
    def test_deterministic(self):
        a = hash_tokenize("a corgi surfing", 4096, 16)
        b = hash_tokenize("a corgi surfing", 4096, 16)
        np.testing.assert_array_equal(a, b)

    def test_distinct_prompts_distinct_ids(self):
        a = hash_tokenize("red apple", 4096, 16)
        b = hash_tokenize("blue sky", 4096, 16)
        assert not np.array_equal(a, b)

    def test_empty_prompt_yields_token(self):
        assert len(hash_tokenize("", 4096, 16)) == 1

    def test_truncates_to_max_tokens(self):
        ids = hash_tokenize("a " * 40, 4096, 8)
        assert len(ids) == 8

    def test_ids_within_vocab(self):
        ids = hash_tokenize("some words here", 100, 16)
        assert np.all(ids < 100)


class TestConditioningEncoder:
    def test_output_shape_padded(self):
        enc = ConditioningEncoder(dim=32, max_tokens=8)
        out = enc.encode("two words")
        assert out.shape == (8, 32)

    def test_deterministic(self):
        enc1 = ConditioningEncoder(dim=16, seed=5)
        enc2 = ConditioningEncoder(dim=16, seed=5)
        np.testing.assert_array_equal(
            enc1.encode("hello world"), enc2.encode("hello world")
        )

    def test_prompt_sensitivity(self):
        enc = ConditioningEncoder(dim=16)
        assert not np.allclose(enc.encode("a cat"), enc.encode("a dog"))

    def test_class_label_encoding(self):
        enc = ConditioningEncoder(dim=16)
        a = enc.encode_class(3)
        b = enc.encode_class(7)
        assert a.shape == (16, 16)
        assert not np.allclose(a, b)

    def test_make_conditioning_none_passthrough(self):
        assert make_conditioning(None) is None
        assert make_conditioning(16) is not None
