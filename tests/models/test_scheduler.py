"""Unit tests for DDPM / DDIM schedulers."""

import numpy as np
import pytest

from repro.models.scheduler import DDIMScheduler, DDPMScheduler


class TestTimesteps:
    def test_descending(self):
        ts = DDIMScheduler().timesteps(50)
        assert len(ts) == 50
        assert np.all(np.diff(ts) < 0)

    def test_within_train_range(self):
        ts = DDPMScheduler().timesteps(10)
        assert ts.max() < 1000
        assert ts.min() >= 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DDIMScheduler().timesteps(0)
        with pytest.raises(ValueError):
            DDIMScheduler().timesteps(1001)

    def test_rejects_tiny_train_schedule(self):
        with pytest.raises(ValueError):
            DDPMScheduler(num_train_timesteps=1)


class TestAddNoise:
    def test_interpolates_sample_and_noise(self, rng):
        sched = DDIMScheduler()
        x = rng.standard_normal((4, 8))
        n = rng.standard_normal((4, 8))
        noisy_early = sched.add_noise(x, n, t=0)
        noisy_late = sched.add_noise(x, n, t=999)
        # Early timestep: mostly signal. Late: mostly noise.
        assert np.linalg.norm(noisy_early - x) < np.linalg.norm(noisy_late - x)


class TestDDIMStep:
    def test_deterministic(self, rng):
        sched = DDIMScheduler()
        x = rng.standard_normal((4, 8))
        eps = rng.standard_normal((4, 8))
        a = sched.step(eps, t=500, sample=x, prev_t=480)
        b = sched.step(eps, t=500, sample=x, prev_t=480)
        np.testing.assert_array_equal(a, b)

    def test_perfect_noise_prediction_recovers_x0(self, rng):
        """If the model predicts the exact noise, stepping to t=-1 returns
        (clipped) x0."""
        sched = DDIMScheduler()
        x0 = rng.standard_normal((4, 8))
        noise = rng.standard_normal((4, 8))
        t = 700
        xt = sched.add_noise(x0, noise, t)
        recovered = sched.step(noise, t=t, sample=xt, prev_t=-1)
        np.testing.assert_allclose(recovered, np.clip(x0, -10, 10), atol=1e-8)


class TestDDPMStep:
    def test_no_rng_returns_mean(self, rng):
        sched = DDPMScheduler()
        x = rng.standard_normal((4, 8))
        eps = rng.standard_normal((4, 8))
        a = sched.step(eps, t=500, sample=x, prev_t=480, rng=None)
        b = sched.step(eps, t=500, sample=x, prev_t=480, rng=None)
        np.testing.assert_array_equal(a, b)

    def test_rng_adds_variance(self, rng):
        sched = DDPMScheduler()
        x = rng.standard_normal((4, 8))
        eps = rng.standard_normal((4, 8))
        a = sched.step(eps, 500, x, prev_t=480, rng=np.random.default_rng(1))
        b = sched.step(eps, 500, x, prev_t=480, rng=np.random.default_rng(2))
        assert not np.allclose(a, b)

    def test_final_step_is_deterministic(self, rng):
        sched = DDPMScheduler()
        x = rng.standard_normal((4, 8))
        eps = rng.standard_normal((4, 8))
        a = sched.step(eps, 10, x, prev_t=-1, rng=np.random.default_rng(1))
        b = sched.step(eps, 10, x, prev_t=-1, rng=np.random.default_rng(2))
        np.testing.assert_array_equal(a, b)
