"""Unit tests for multi-head attention."""

import numpy as np
import pytest

from repro.models.activations import softmax
from repro.models.attention import AttentionTrace, MultiHeadAttention


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        attn = MultiHeadAttention(16, 4, rng)
        out, trace = attn(rng.standard_normal((6, 16)))
        assert out.shape == (6, 16)
        assert isinstance(trace, AttentionTrace)

    def test_rejects_indivisible_heads(self, rng):
        with pytest.raises(ValueError, match="not divisible"):
            MultiHeadAttention(10, 3, rng)

    def test_probs_are_distributions(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        _, trace = attn(rng.standard_normal((5, 8)))
        np.testing.assert_allclose(
            trace.probs.sum(axis=-1), np.ones((2, 5)), atol=1e-12
        )

    def test_split_merge_roundtrip(self, rng):
        attn = MultiHeadAttention(12, 3, rng)
        x = rng.standard_normal((7, 12))
        np.testing.assert_array_equal(attn.merge_heads(attn.split_heads(x)), x)

    def test_matches_manual_computation(self, rng):
        attn = MultiHeadAttention(8, 1, rng)
        x = rng.standard_normal((4, 8))
        q, k, v = attn.wq(x), attn.wk(x), attn.wv(x)
        scores = (q @ k.T) * attn.scale
        expected = attn.wo(softmax(scores) @ v)
        out, _ = attn(x)
        np.testing.assert_allclose(out, expected)

    def test_cross_attention_uses_context(self, rng):
        attn = MultiHeadAttention(8, 2, rng, context_dim=6)
        assert attn.is_cross_attention
        x = rng.standard_normal((4, 8))
        ctx1 = rng.standard_normal((3, 6))
        ctx2 = rng.standard_normal((3, 6))
        out1, _ = attn(x, context=ctx1)
        out2, _ = attn(x, context=ctx2)
        assert not np.allclose(out1, out2)

    def test_cross_attention_score_shape(self, rng):
        attn = MultiHeadAttention(8, 2, rng, context_dim=6)
        _, trace = attn(rng.standard_normal((4, 8)),
                        context=rng.standard_normal((3, 6)))
        assert trace.scores.shape == (2, 4, 3)

    def test_executor_hook_overrides(self, rng):
        attn = MultiHeadAttention(8, 2, rng)

        def executor(layer, x, context):
            trace = AttentionTrace(scores=np.zeros((2, 4, 4)),
                                   probs=np.zeros((2, 4, 4)))
            return np.zeros_like(x), trace

        out, _ = attn(rng.standard_normal((4, 8)), executor=executor)
        np.testing.assert_array_equal(out, np.zeros((4, 8)))

    def test_macs_counts(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        counts = attn.macs(tokens=4)
        # 3 projections of 4x8x8 each.
        assert counts["qkv_projection"] == 3 * 4 * 8 * 8
        # QK^T + PV (2*t*t*d) plus output projection.
        assert counts["attention"] == 2 * 4 * 4 * 8 + 4 * 8 * 8

    def test_trace_totals(self, rng):
        attn = MultiHeadAttention(8, 2, rng)
        _, trace = attn(rng.standard_normal((5, 8)))
        assert trace.total_score_elements == 2 * 5 * 5
        assert trace.output_sparsity == 0.0
