"""Unit tests for the benchmark model zoo."""

import numpy as np
import pytest

from repro.models.network import NetworkType
from repro.models.zoo import BENCHMARK_MODELS, build_all, build_model
from repro.workloads.specs import BENCHMARK_ORDER, get_spec


class TestBuildModel:
    def test_all_seven_models_build(self):
        for name in BENCHMARK_ORDER:
            model = build_model(name, seed=0, total_iterations=2)
            assert model.name == name

    def test_unknown_model_raises_with_known_list(self):
        with pytest.raises(KeyError, match="known models"):
            build_model("sora")

    def test_network_type_matches_spec(self):
        assert (
            build_model("mld").network.network_type
            is NetworkType.TRANSFORMER_UNET
        )
        assert (
            build_model("stable_diffusion").network.network_type
            is NetworkType.RESBLOCK_UNET
        )
        assert (
            build_model("dit").network.network_type
            is NetworkType.TRANSFORMER_ONLY
        )

    def test_conditioning_presence_matches_spec(self):
        assert build_model("dit").conditioning is None
        assert build_model("stable_diffusion").conditioning is not None

    def test_overrides(self):
        model = build_model("dit", total_iterations=5, depth=2)
        assert model.spec.total_iterations == 5
        assert model.network.depth == 2

    def test_deterministic_weights(self):
        a = build_model("mdm", seed=9)
        b = build_model("mdm", seed=9)
        np.testing.assert_array_equal(
            a.network.blocks[0].ffn.linear1.weight,
            b.network.blocks[0].ffn.linear1.weight,
        )

    def test_seed_changes_weights(self):
        a = build_model("mdm", seed=1)
        b = build_model("mdm", seed=2)
        assert not np.allclose(
            a.network.blocks[0].ffn.linear1.weight,
            b.network.blocks[0].ffn.linear1.weight,
        )

    def test_geglu_for_stable_diffusion(self):
        model = build_model("stable_diffusion")
        assert model.network.blocks[0].ffn.activation == "geglu"

    def test_benchmark_models_constant(self):
        assert tuple(BENCHMARK_MODELS) == BENCHMARK_ORDER

    def test_build_all(self):
        models = build_all(seed=0)
        assert set(models) == set(BENCHMARK_ORDER)


class TestSpecs:
    def test_get_spec_roundtrip(self):
        for name in BENCHMARK_ORDER:
            assert get_spec(name).name == name

    def test_dense_period(self):
        assert get_spec("dit").dense_period == 3  # N=2 sparse + 1 dense

    def test_table1_configs(self):
        """Spot-check Table I values."""
        dit = get_spec("dit")
        assert dit.total_iterations == 100
        assert dit.sparse_iters_n == 2
        assert dit.target_inter_sparsity == 0.80
        assert dit.q_threshold == 0.15
        assert dit.top_k_ratio == 0.05
        mld = get_spec("mld")
        assert mld.sparse_iters_n == 9
        assert mld.target_inter_sparsity == 0.95

    def test_resblock_flags(self):
        assert get_spec("stable_diffusion").has_resblocks
        assert get_spec("videocrafter2").has_resblocks
        assert not get_spec("dit").has_resblocks
