"""Unit tests for the DPM-Solver++(2M) fast sampler."""

import numpy as np

from repro.models.scheduler import DDIMScheduler, DPMSolverPP2MScheduler


def gentle_eps(x, t):
    """A smooth, contractive synthetic noise model."""
    return 0.8 * x / np.sqrt(1 + (x * x).mean()) + 0.1 * np.cos(x) * (
        t / 1000.0
    )


def rollout(scheduler, steps, seed=0):
    if hasattr(scheduler, "reset"):
        scheduler.reset()
    ts = scheduler.timesteps(steps)
    x = np.random.default_rng(seed).standard_normal((4, 4))
    for i, t in enumerate(ts):
        prev = int(ts[i + 1]) if i + 1 < len(ts) else -1
        x = scheduler.step(gentle_eps(x, int(t)), int(t), x, prev_t=prev)
    return x


class TestDPMSolver:
    def test_first_step_matches_ddim_without_clipping(self, rng):
        """Before any multistep history (and with x0 inside the clip
        range) the first-order update equals DDIM."""
        ddim = DDIMScheduler()
        dpm = DPMSolverPP2MScheduler()
        dpm.reset()
        x = 0.1 * rng.standard_normal((4, 4))
        eps = 0.05 * rng.standard_normal((4, 4))
        a = ddim.step(eps, 200, x, prev_t=180)
        b = dpm.step(eps, 200, x, prev_t=180)
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_deterministic(self):
        a = rollout(DPMSolverPP2MScheduler(), 10)
        b = rollout(DPMSolverPP2MScheduler(), 10)
        np.testing.assert_array_equal(a, b)

    def test_reset_clears_history(self, rng):
        dpm = DPMSolverPP2MScheduler()
        rollout(dpm, 10)
        dpm.reset()
        assert dpm._prev_x0 is None

    def test_converges_to_own_limit(self):
        """Self-referenced convergence: coarser grids approach the fine
        grid monotonically-ish, confirming the solver integrates one ODE."""
        dpm_ref = rollout(DPMSolverPP2MScheduler(), 1000)
        errors = [
            float(np.abs(rollout(DPMSolverPP2MScheduler(), s) - dpm_ref).max())
            for s in (10, 20, 50)
        ]
        assert errors[0] > errors[1] > errors[2]

    def test_faster_convergence_than_ddim(self):
        """The point of a second-order solver: fewer steps for the same
        error against each solver's own fine-step limit."""
        dpm_ref = rollout(DPMSolverPP2MScheduler(), 1000)
        ddim_ref = rollout(DDIMScheduler(), 1000)
        dpm_err = float(np.abs(rollout(DPMSolverPP2MScheduler(), 10) - dpm_ref).max())
        ddim_err = float(np.abs(rollout(DDIMScheduler(), 10) - ddim_ref).max())
        assert dpm_err < ddim_err

    def test_final_step_uses_first_order(self):
        """The lower_order_final guard: a 2-step trajectory never applies
        the second-order extrapolation (prev history exists only at the
        final step, which downgrades to first order)."""
        dpm = DPMSolverPP2MScheduler()
        dpm.reset()
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 2))
        x = dpm.step(0.1 * x, 500, x, prev_t=0)
        out = dpm.step(0.1 * x, 0, x, prev_t=-1)
        assert np.all(np.isfinite(out))
        assert np.max(np.abs(out)) < 100.0

    def test_pipeline_integration(self):
        """The pipeline resets the solver per generation, so repeated runs
        are identical."""
        from repro.models.pipeline import DiffusionPipeline
        from repro.models.zoo import build_model

        model = build_model("dit", seed=0, total_iterations=8)
        pipe = DiffusionPipeline(
            model.network, DPMSolverPP2MScheduler(), 8, model.conditioning
        )
        a = pipe.generate(seed=2, class_label=1)
        b = pipe.generate(seed=2, class_label=1)
        np.testing.assert_array_equal(a.sample, b.sample)
