"""Unit tests for the diffusion networks (all three types)."""

import numpy as np
import pytest

from repro.models.network import (
    DiffusionNetwork,
    NetworkType,
    timestep_embedding,
)
from repro.models.transformer import Executors


def make_network(network_type, rng, tokens=16, depth=4, **kwargs):
    return DiffusionNetwork(
        network_type,
        tokens=tokens,
        dim=32,
        num_heads=4,
        depth=depth,
        ffn_mult=4,
        rng=rng,
        **kwargs,
    )


class TestTimestepEmbedding:
    def test_shape(self):
        assert timestep_embedding(5, 16).shape == (16,)

    def test_odd_dim_padded(self):
        assert timestep_embedding(5, 15).shape == (15,)

    def test_distinct_timesteps_distinct_embeddings(self):
        e1 = timestep_embedding(1, 32)
        e2 = timestep_embedding(900, 32)
        assert not np.allclose(e1, e2)

    def test_bounded(self):
        assert np.max(np.abs(timestep_embedding(999, 64))) <= 1.0


class TestTransformerOnly:
    def test_forward_shape(self, rng):
        net = make_network(NetworkType.TRANSFORMER_ONLY, rng)
        out, traces = net(rng.standard_normal((16, 32)), t=10)
        assert out.shape == (16, 32)
        assert len(traces) == 4

    def test_rejects_wrong_latent_shape(self, rng):
        net = make_network(NetworkType.TRANSFORMER_ONLY, rng)
        with pytest.raises(ValueError, match="latent shape"):
            net(np.zeros((8, 32)), t=0)

    def test_timestep_changes_output_with_adaln(self, rng):
        net = make_network(NetworkType.TRANSFORMER_ONLY, rng, use_adaln=True)
        x = rng.standard_normal((16, 32))
        out1, _ = net(x, t=10)
        out2, _ = net(x, t=900)
        assert not np.allclose(out1, out2)

    def test_executors_list_and_callable(self, rng):
        net = make_network(NetworkType.TRANSFORMER_ONLY, rng)
        x = rng.standard_normal((16, 32))
        seen = []

        def provider(i):
            seen.append(i)
            return Executors()

        net(x, t=0, executors=provider)
        assert seen == [0, 1, 2, 3]
        net(x, t=0, executors=[Executors()] * 4)  # sequence form works too


class TestTransformerUNet:
    def test_forward_shape(self, rng):
        net = make_network(NetworkType.TRANSFORMER_UNET, rng)
        out, traces = net(rng.standard_normal((16, 32)), t=5)
        assert out.shape == (16, 32)
        assert len(traces) == 4

    def test_odd_token_count(self, rng):
        net = make_network(NetworkType.TRANSFORMER_UNET, rng, tokens=15)
        out, _ = net(rng.standard_normal((15, 32)), t=5)
        assert out.shape == (15, 32)

    def test_decoder_runs_at_half_resolution(self, rng):
        net = make_network(NetworkType.TRANSFORMER_UNET, rng)
        _, traces = net(rng.standard_normal((16, 32)), t=5)
        # First half of blocks see 16 tokens, second half 8.
        assert traces[0].self_attention.scores.shape[-1] == 16
        assert traces[-1].self_attention.scores.shape[-1] == 8


class TestResBlockUNet:
    def test_requires_square_tokens(self, rng):
        with pytest.raises(ValueError, match="square"):
            make_network(NetworkType.RESBLOCK_UNET, rng, tokens=15)

    def test_forward_shape(self, rng):
        net = make_network(NetworkType.RESBLOCK_UNET, rng, tokens=16, depth=2)
        out, traces = net(rng.standard_normal((16, 32)), t=5)
        assert out.shape == (16, 32)
        assert len(traces) == 2

    def test_has_resblocks(self, rng):
        net = make_network(NetworkType.RESBLOCK_UNET, rng, tokens=16, depth=2)
        assert len(net.resblocks) == 2


class TestMacs:
    def test_breakdown_keys(self, rng):
        net = make_network(NetworkType.RESBLOCK_UNET, rng, tokens=16, depth=2)
        counts = net.macs_per_call()
        assert set(counts) == {"qkv_projection", "attention", "ffn", "etc"}
        assert counts["etc"] > 0  # resblocks + projections

    def test_transformer_only_small_etc(self, rng):
        net = make_network(NetworkType.TRANSFORMER_ONLY, rng)
        counts = net.macs_per_call()
        transformer = (
            counts["qkv_projection"] + counts["attention"] + counts["ffn"]
        )
        assert counts["etc"] < 0.1 * transformer

    def test_context_tokens_increase_qkv(self, rng):
        net = DiffusionNetwork(
            NetworkType.TRANSFORMER_ONLY,
            tokens=16,
            dim=32,
            num_heads=4,
            depth=2,
            ffn_mult=4,
            rng=rng,
            context_dim=32,
        )
        with_ctx = net.macs_per_call(context_tokens=8)
        without = net.macs_per_call()
        assert with_ctx["qkv_projection"] > without["qkv_projection"]
