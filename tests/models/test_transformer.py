"""Unit tests for the transformer block."""

import numpy as np

from repro.models.transformer import BlockTrace, Executors, TransformerBlock


class TestTransformerBlock:
    def test_output_shape(self, rng):
        block = TransformerBlock(16, 4, 4, rng)
        out, trace = block(rng.standard_normal((6, 16)))
        assert out.shape == (6, 16)
        assert isinstance(trace, BlockTrace)

    def test_trace_has_no_cross_when_unconfigured(self, rng):
        block = TransformerBlock(16, 4, 4, rng)
        _, trace = block(rng.standard_normal((6, 16)))
        assert trace.cross_attention is None

    def test_cross_attention_runs_with_context(self, rng):
        block = TransformerBlock(16, 4, 4, rng, context_dim=8)
        ctx = rng.standard_normal((3, 8))
        _, trace = block(rng.standard_normal((6, 16)), context=ctx)
        assert trace.cross_attention is not None
        assert trace.cross_attention.scores.shape == (4, 6, 3)

    def test_cross_attention_skipped_without_context(self, rng):
        block = TransformerBlock(16, 4, 4, rng, context_dim=8)
        _, trace = block(rng.standard_normal((6, 16)))
        assert trace.cross_attention is None

    def test_residual_structure(self, rng):
        """Output differs from input, but retains strong correlation
        (residual path dominates for small weights)."""
        block = TransformerBlock(16, 4, 4, rng)
        x = rng.standard_normal((6, 16))
        out, _ = block(x)
        assert not np.allclose(out, x)
        corr = np.corrcoef(x.ravel(), out.ravel())[0, 1]
        assert corr > 0.3

    def test_adaln_timestep_changes_output(self, rng):
        block = TransformerBlock(16, 4, 4, rng, timestep_dim=8)
        x = rng.standard_normal((6, 16))
        out1, _ = block(x, t_embed=np.ones(8))
        out2, _ = block(x, t_embed=-np.ones(8))
        assert not np.allclose(out1, out2)

    def test_ffn_executor_is_used(self, rng):
        block = TransformerBlock(16, 4, 4, rng)
        calls = []

        def ffn_exec(layer, x):
            calls.append(x.shape)
            return layer.forward_exact(x)

        block(rng.standard_normal((6, 16)), executors=Executors(ffn=ffn_exec))
        assert calls == [(6, 16)]

    def test_attention_executor_is_used(self, rng):
        block = TransformerBlock(16, 4, 4, rng)
        calls = []

        def attn_exec(layer, x, context):
            calls.append(True)
            return layer.forward_exact(x, context)

        block(
            rng.standard_normal((6, 16)),
            executors=Executors(self_attention=attn_exec),
        )
        assert calls == [True]

    def test_macs_include_all_categories(self, rng):
        block = TransformerBlock(16, 4, 4, rng, context_dim=8)
        counts = block.macs(tokens=6, context_tokens=3)
        assert set(counts) == {"qkv_projection", "attention", "ffn"}
        assert all(v > 0 for v in counts.values())

    def test_deterministic(self):
        b1 = TransformerBlock(8, 2, 4, np.random.default_rng(3))
        b2 = TransformerBlock(8, 2, 4, np.random.default_rng(3))
        x = np.random.default_rng(4).standard_normal((5, 8))
        np.testing.assert_array_equal(b1(x)[0], b2(x)[0])
