"""Unit tests for Conv2d / GroupNorm / ResBlock."""

import numpy as np
import pytest

from repro.models.resblock import Conv2d, GroupNorm, ResBlock


class TestConv2d:
    def test_output_shape_same_padding(self, rng):
        conv = Conv2d(3, 5, rng)
        out = conv(rng.standard_normal((3, 8, 8)))
        assert out.shape == (5, 8, 8)

    def test_matches_naive_convolution(self, rng):
        conv = Conv2d(2, 3, rng)
        x = rng.standard_normal((2, 5, 5))
        out = conv(x)
        # Naive direct convolution at an interior point.
        r, cidx = 2, 3
        for oc in range(3):
            acc = conv.bias[oc]
            for ic in range(2):
                for dy in range(3):
                    for dx in range(3):
                        acc += (
                            conv.weight[oc, ic, dy, dx]
                            * x[ic, r + dy - 1, cidx + dx - 1]
                        )
            assert out[oc, r, cidx] == pytest.approx(acc)

    def test_rejects_even_kernel(self, rng):
        with pytest.raises(ValueError, match="odd"):
            Conv2d(2, 2, rng, kernel_size=4)

    def test_rejects_wrong_channels(self, rng):
        conv = Conv2d(3, 3, rng)
        with pytest.raises(ValueError, match="channels"):
            conv(np.zeros((2, 4, 4)))

    def test_macs(self, rng):
        conv = Conv2d(4, 8, rng)
        assert conv.macs(5, 5) == 5 * 5 * 8 * 4 * 9


class TestGroupNorm:
    def test_normalizes_groups(self, rng):
        norm = GroupNorm(8, groups=2)
        out = norm(rng.standard_normal((8, 4, 4)) * 3 + 1)
        grouped = out.reshape(2, 4, 4, 4)
        np.testing.assert_allclose(
            grouped.mean(axis=(1, 2, 3)), np.zeros(2), atol=1e-10
        )

    def test_falls_back_to_single_group(self):
        norm = GroupNorm(7, groups=4)  # 7 not divisible by 4
        assert norm.groups == 1


class TestResBlock:
    def test_shape_preserved(self, rng):
        block = ResBlock(channels=4, timestep_dim=8, rng=rng)
        x = rng.standard_normal((4, 6, 6))
        out = block(x, rng.standard_normal(8))
        assert out.shape == (4, 6, 6)

    def test_residual_path_present(self, rng):
        """Zeroing both convs leaves the identity."""
        block = ResBlock(4, 8, rng)
        block.conv1.weight[:] = 0.0
        block.conv2.weight[:] = 0.0
        block.time_proj[:] = 0.0
        x = rng.standard_normal((4, 6, 6))
        np.testing.assert_allclose(block(x, np.zeros(8)), x)

    def test_timestep_injection_changes_output(self, rng):
        block = ResBlock(4, 8, rng)
        x = rng.standard_normal((4, 6, 6))
        out1 = block(x, np.ones(8))
        out2 = block(x, -np.ones(8))
        assert not np.allclose(out1, out2)

    def test_macs(self, rng):
        block = ResBlock(4, 8, rng)
        assert block.macs(6, 6) == 2 * 6 * 6 * 4 * 4 * 9
