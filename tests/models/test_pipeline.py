"""Unit tests for the diffusion inference pipeline."""

import numpy as np
import pytest

from repro.models.pipeline import DiffusionPipeline
from repro.models.transformer import Executors


class TestDiffusionPipeline:
    def test_generates_correct_shape(self, dit_model):
        pipe = dit_model.make_pipeline()
        result = pipe.generate(seed=0, class_label=1)
        assert result.sample.shape == (16, 64)
        assert result.iterations == 9

    def test_deterministic_given_seed(self, dit_model):
        pipe = dit_model.make_pipeline()
        a = pipe.generate(seed=3, class_label=1)
        b = pipe.generate(seed=3, class_label=1)
        np.testing.assert_array_equal(a.sample, b.sample)

    def test_seed_changes_output(self, dit_model):
        pipe = dit_model.make_pipeline()
        a = pipe.generate(seed=1, class_label=1)
        b = pipe.generate(seed=2, class_label=1)
        assert not np.allclose(a.sample, b.sample)

    def test_prompt_conditioning_changes_output(self, sd_model):
        pipe = sd_model.make_pipeline()
        a = pipe.generate(seed=1, prompt="a red bird")
        b = pipe.generate(seed=1, prompt="a blue car")
        assert not np.allclose(a.sample, b.sample)

    def test_collect_traces(self, dit_model):
        pipe = dit_model.make_pipeline()
        result = pipe.generate(seed=0, collect_traces=True)
        assert len(result.block_traces) == 9
        assert len(result.block_traces[0]) == dit_model.network.depth

    def test_collect_latents(self, dit_model):
        pipe = dit_model.make_pipeline()
        result = pipe.generate(seed=0, collect_latents=True)
        assert len(result.latents) == 9
        np.testing.assert_array_equal(result.latents[-1], result.sample)

    def test_iteration_hook_sees_every_iteration(self, dit_model):
        pipe = dit_model.make_pipeline()
        seen = []
        pipe.generate(
            seed=0, iteration_start_hook=lambda i, t: seen.append((i, t))
        )
        assert [i for i, _ in seen] == list(range(9))
        # Timesteps decrease over the run.
        ts = [t for _, t in seen]
        assert all(a > b for a, b in zip(ts, ts[1:]))

    def test_executor_provider_called_per_iteration_and_block(self, dit_model):
        pipe = dit_model.make_pipeline()
        calls = []

        def provider(iteration, block):
            calls.append((iteration, block))
            return Executors()

        pipe.generate(seed=0, executor_provider=provider)
        assert len(calls) == 9 * dit_model.network.depth

    def test_rejects_bad_scheduler(self, dit_model):
        with pytest.raises(TypeError):
            DiffusionPipeline(dit_model.network, object(), 10)

    def test_latents_stay_bounded(self, dit_model):
        """The x0-clipping in the scheduler keeps latents finite and within
        the clip envelope (|x| <= 10 per element at the final step)."""
        pipe = dit_model.make_pipeline()
        result = pipe.generate(seed=0, collect_latents=True)
        for latent in result.latents:
            assert np.all(np.isfinite(latent))
        assert np.max(np.abs(result.latents[-1])) <= 10.0 + 1e-9
