"""Unit tests for ASCII heatmap rendering."""

import numpy as np
import pytest

from repro.analysis.heatmap import RAMP, render_bitmask, render_heatmap
from repro.core.bitmask import Bitmask


class TestRenderHeatmap:
    def test_shape_preserved_for_small_input(self):
        text = render_heatmap(np.eye(5))
        assert len(text.splitlines()) == 5
        assert all(len(line) == 5 for line in text.splitlines())

    def test_extremes_use_ramp_ends(self):
        text = render_heatmap(np.array([[0.0, 1.0]]))
        assert text[0] == RAMP[0]
        assert text[1] == RAMP[-1]

    def test_downsampling_caps_size(self):
        text = render_heatmap(np.random.default_rng(0).random((100, 100)),
                              max_size=20)
        lines = text.splitlines()
        assert len(lines) <= 20

    def test_axis_label_appended(self):
        text = render_heatmap(np.eye(3), axis_label="iterations")
        assert "iterations" in text.splitlines()[-1]

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            render_heatmap(np.zeros(5))

    def test_constant_matrix_stable(self):
        text = render_heatmap(np.full((3, 3), 7.0))
        assert len(text.splitlines()) == 3

    def test_diagonal_structure_visible(self):
        """A similarity matrix renders with the densest ramp chars on the
        diagonal."""
        n = 10
        matrix = np.fromfunction(
            lambda i, j: 1.0 / (1.0 + np.abs(i - j)), (n, n)
        )
        lines = render_heatmap(matrix).splitlines()
        for i in range(n):
            assert lines[i][i] == RAMP[-1]


class TestRenderBitmask:
    def test_characters(self):
        mask = Bitmask(np.array([[1, 0], [0, 1]], dtype=bool))
        assert render_bitmask(mask) == "#.\n.#"

    def test_downsamples(self, rng):
        mask = Bitmask.random(200, 200, 0.5, rng)
        lines = render_bitmask(mask, max_size=32).splitlines()
        assert len(lines) <= 32
