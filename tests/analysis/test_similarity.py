"""Unit tests for the inter-iteration similarity analysis (Fig. 7)."""

import numpy as np
import pytest

from repro.analysis.similarity import (
    adjacent_differences,
    cosine_similarity_matrix,
    difference_position_overlap,
    gelu_outputs_by_iteration,
)


@pytest.fixture(scope="module")
def dit_outputs():
    from repro.models.zoo import build_model

    model = build_model("dit", seed=0, total_iterations=8)
    return gelu_outputs_by_iteration(model, block=1, seed=3, class_label=2)


class TestGeluOutputs:
    def test_one_output_per_iteration(self, dit_outputs):
        assert len(dit_outputs) == 8

    def test_shapes_consistent(self, dit_outputs):
        shapes = {o.shape for o in dit_outputs}
        assert len(shapes) == 1


class TestSimilarityMatrix:
    def test_symmetric_unit_diagonal(self, dit_outputs):
        matrix = cosine_similarity_matrix(dit_outputs)
        np.testing.assert_allclose(np.diag(matrix), np.ones(8))
        np.testing.assert_allclose(matrix, matrix.T)

    def test_adjacent_iterations_highly_similar(self, dit_outputs):
        """The Fig. 7 (a) observation that justifies FFN-Reuse. The first
        high-noise steps are less similar (as in the paper's heatmap
        corner), so the test checks the central tendency."""
        matrix = cosine_similarity_matrix(dit_outputs)
        adjacent = np.diag(matrix, k=1)
        assert adjacent.mean() > 0.75
        assert np.median(adjacent) > 0.85
        assert adjacent.min() > 0.3

    def test_similarity_decays_with_distance(self, dit_outputs):
        matrix = cosine_similarity_matrix(dit_outputs)
        near = np.diag(matrix, k=1).mean()
        far = matrix[0, -1]
        assert near >= far - 0.05


class TestAdjacentDifferences:
    def test_count(self, dit_outputs):
        assert len(adjacent_differences(dit_outputs)) == 7

    def test_differences_concentrated(self, dit_outputs):
        """Fig. 7 (b): most positions barely change; a small set changes a
        lot (heavy-tailed difference distribution)."""
        diffs = adjacent_differences(dit_outputs)
        stacked = np.concatenate([d.ravel() for d in diffs])
        mean = stacked.mean()
        p99 = np.quantile(stacked, 0.99)
        assert p99 > 3 * mean

    def test_large_difference_positions_recur(self, dit_outputs):
        """The paper verifies the big-difference positions are stable
        across iterations — what makes a per-dense-phase bitmask valid."""
        overlap = difference_position_overlap(dit_outputs, quantile=0.9)
        # Random position sets of this size would overlap ~5% (Jaccard);
        # the measured recurrence is well above chance.
        assert overlap > 0.1
