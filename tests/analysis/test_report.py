"""Unit tests for report formatting."""

import pytest

from repro.analysis.report import format_table, percent


class TestPercent:
    def test_format(self):
        assert percent(0.138) == "13.8%"
        assert percent(0.5, digits=0) == "50%"


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]], title="T")
        assert "T" in text
        assert "a" in text
        assert "3" in text

    def test_column_alignment(self):
        text = format_table(["name", "v"], [["long_name_here", 1], ["x", 22]])
        lines = text.splitlines()
        assert len({line.index("v") for line in lines[:1]}) == 1

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])
