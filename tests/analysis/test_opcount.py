"""Unit tests for operation-count analysis (Fig. 4)."""

import pytest

from repro.analysis.opcount import operation_breakdown, operation_breakdown_table
from repro.workloads.specs import BENCHMARK_ORDER, get_spec


class TestBreakdown:
    def test_shares_sum_to_one(self):
        info = operation_breakdown(get_spec("stable_diffusion"))
        assert sum(info["shares"].values()) == pytest.approx(1.0)

    def test_transformer_share_matches_spec(self):
        for name in BENCHMARK_ORDER:
            spec = get_spec(name)
            info = operation_breakdown(spec)
            assert info["transformer_share"] == pytest.approx(
                spec.paper_transformer_share, abs=0.02
            )

    def test_dit_is_pure_transformer(self):
        info = operation_breakdown(get_spec("dit"))
        assert info["transformer_share"] == pytest.approx(1.0)
        assert info["shares"]["etc"] == 0.0

    def test_ffn_is_largest_transformer_category(self):
        """Fig. 4: FFN layers dominate, reaching up to ~67% of transformer
        operations."""
        for name in BENCHMARK_ORDER:
            info = operation_breakdown(get_spec(name))
            assert info["ffn_share_of_transformer"] >= 0.4

    def test_table_covers_all_models(self):
        rows = operation_breakdown_table()
        assert len(rows) == 7
        assert {r["model"] for r in rows} == {
            get_spec(n).display_name for n in BENCHMARK_ORDER
        }
