"""Unit tests for synthetic workload generation."""

import numpy as np
import pytest

from repro.workloads.generator import (
    attention_keepmask,
    denoising_trajectory,
    ffn_output_bitmask,
)
from repro.workloads.metrics import cosine_similarity


class TestFFNBitmask:
    def test_target_sparsity_hit(self, rng):
        mask = ffn_output_bitmask(64, 256, sparsity=0.9, rng=rng)
        assert mask.sparsity == pytest.approx(0.9, abs=0.02)

    def test_dead_columns_present(self, rng):
        mask = ffn_output_bitmask(
            64, 256, sparsity=0.9, dead_col_fraction=0.3, rng=rng
        )
        dead_ratio = len(mask.all_zero_columns()) / mask.cols
        assert dead_ratio == pytest.approx(0.3, abs=0.12)

    def test_no_dead_columns_when_zero(self, rng):
        mask = ffn_output_bitmask(
            256, 64, sparsity=0.5, dead_col_fraction=0.0, rng=rng
        )
        assert len(mask.all_zero_columns()) < 5

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            ffn_output_bitmask(4, 4, sparsity=1.5, rng=rng)
        with pytest.raises(ValueError):
            ffn_output_bitmask(4, 4, sparsity=0.5, dead_col_fraction=1.0, rng=rng)

    def test_deterministic(self):
        a = ffn_output_bitmask(16, 32, 0.8, rng=np.random.default_rng(1))
        b = ffn_output_bitmask(16, 32, 0.8, rng=np.random.default_rng(1))
        assert a == b


class TestAttentionKeepmask:
    def test_rows_keep_topk(self, rng):
        mask = attention_keepmask(16, 32, top_k_ratio=0.25, rng=rng)
        counts = mask.mask.sum(axis=1)
        assert np.all(counts == 8)

    def test_one_hot_rows_empty(self, rng):
        mask = attention_keepmask(
            64, 32, top_k_ratio=0.25, one_hot_rate=0.5, rng=rng
        )
        empty_rows = int((mask.mask.sum(axis=1) == 0).sum())
        assert empty_rows == pytest.approx(32, abs=12)

    def test_concentration_creates_dead_key_columns(self, rng):
        diffuse = attention_keepmask(
            64, 64, 0.1, concentration=0.01, rng=np.random.default_rng(0)
        )
        focused = attention_keepmask(
            64, 64, 0.1, concentration=5.0, rng=np.random.default_rng(0)
        )
        assert len(focused.all_zero_columns()) >= len(diffuse.all_zero_columns())

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            attention_keepmask(4, 4, top_k_ratio=0.0, rng=rng)
        with pytest.raises(ValueError):
            attention_keepmask(4, 4, 0.5, one_hot_rate=2.0, rng=rng)


class TestTrajectory:
    def test_shape(self, rng):
        traj = denoising_trajectory(8, 16, iterations=10, rng=rng)
        assert traj.shape == (10, 8, 16)

    def test_adjacent_similarity_matches_smoothness(self, rng):
        traj = denoising_trajectory(
            32, 64, iterations=20, smoothness=0.95, rng=rng
        )
        sims = [
            cosine_similarity(traj[i], traj[i + 1]) for i in range(19)
        ]
        assert np.mean(sims) == pytest.approx(0.95, abs=0.05)

    def test_rejects_bad_smoothness(self, rng):
        with pytest.raises(ValueError):
            denoising_trajectory(4, 4, 5, smoothness=1.0, rng=rng)
