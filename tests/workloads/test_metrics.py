"""Unit tests for evaluation metrics and proxies."""

import numpy as np
import pytest

from repro.workloads.metrics import (
    beat_alignment_proxy,
    cosine_similarity,
    fid_proxy,
    frechet_distance,
    inception_score_proxy,
    physical_foot_contact_proxy,
    psnr,
    r_precision_proxy,
    random_features,
)


class TestPSNR:
    def test_identical_is_infinite(self, rng):
        x = rng.standard_normal((4, 4))
        assert psnr(x, x) == float("inf")

    def test_decreases_with_noise(self, rng):
        x = rng.standard_normal((16, 16))
        small = psnr(x, x + 0.01 * rng.standard_normal((16, 16)))
        large = psnr(x, x + 0.5 * rng.standard_normal((16, 16)))
        assert small > large

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            psnr(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_explicit_data_range(self, rng):
        x = rng.standard_normal((8, 8))
        y = x + 0.1
        assert psnr(x, y, data_range=2.0) > psnr(x, y, data_range=1.0)


class TestCosine:
    def test_self_similarity_is_one(self, rng):
        x = rng.standard_normal(64)
        assert cosine_similarity(x, x) == pytest.approx(1.0)

    def test_orthogonal_is_zero(self):
        assert cosine_similarity(np.array([1.0, 0.0]),
                                 np.array([0.0, 1.0])) == pytest.approx(0.0)

    def test_zero_vector_defined(self):
        assert cosine_similarity(np.zeros(4), np.ones(4)) == 0.0


class TestFrechet:
    def test_identical_distributions_zero(self):
        mu = np.zeros(4)
        sigma = np.eye(4)
        assert frechet_distance(mu, sigma, mu, sigma) == pytest.approx(
            0.0, abs=1e-8
        )

    def test_mean_shift_increases_distance(self):
        sigma = np.eye(4)
        d = frechet_distance(np.zeros(4), sigma, np.full(4, 2.0), sigma)
        assert d == pytest.approx(16.0, rel=0.01)


class TestFIDProxy:
    def test_same_samples_near_zero(self, rng):
        samples = rng.standard_normal((32, 8, 8))
        assert fid_proxy(samples, samples) == pytest.approx(0.0, abs=1e-6)

    def test_perturbation_ordering(self, rng):
        ref = rng.standard_normal((64, 8, 8))
        near = ref + 0.05 * rng.standard_normal(ref.shape)
        far = ref + 2.0 * rng.standard_normal(ref.shape)
        assert fid_proxy(ref, near) < fid_proxy(ref, far)


class TestISProxy:
    def test_positive(self, rng):
        assert inception_score_proxy(rng.standard_normal((16, 8, 8))) > 0

    def test_diverse_beats_collapsed(self, rng):
        diverse = rng.standard_normal((64, 32)) * 10
        collapsed = np.tile(rng.standard_normal((1, 32)), (64, 1))
        assert inception_score_proxy(diverse) > inception_score_proxy(
            collapsed
        )


class TestRPrecisionProxy:
    def test_perfectly_aligned_retrieval(self, rng):
        cond = rng.standard_normal((16, 32))
        score = r_precision_proxy(cond.copy(), cond, top_k=1)
        assert score == 1.0

    def test_random_near_chance(self, rng):
        gen = rng.standard_normal((64, 32))
        cond = rng.standard_normal((64, 32))
        assert r_precision_proxy(gen, cond, top_k=1) < 0.3


class TestMotionProxies:
    def test_periodic_motion_high_beat_score(self):
        """Motion with energy bursts every 8 frames (dance hits on the
        beat) scores higher than unstructured noise."""
        motion = np.zeros((64, 3))
        motion[::8] = 5.0  # a jump every beat
        rng = np.random.default_rng(0)
        noise = rng.standard_normal(motion.shape)
        assert beat_alignment_proxy(motion, beats_period=8) > (
            beat_alignment_proxy(noise, beats_period=8)
        )

    def test_constant_motion_zero(self):
        assert beat_alignment_proxy(np.zeros((32, 3))) == 0.0

    def test_pfc_smooth_beats_jerky(self, rng):
        smooth = np.cumsum(np.ones((32, 3)) * 0.1, axis=0)
        jerky = rng.standard_normal((32, 3)) * 5
        assert physical_foot_contact_proxy(smooth) < (
            physical_foot_contact_proxy(jerky)
        )

    def test_pfc_short_motion(self):
        assert physical_foot_contact_proxy(np.zeros((2, 3))) == 0.0

    def test_features_shape(self, rng):
        feats = random_features(rng.standard_normal((10, 4, 4)), dim_out=6)
        assert feats.shape == (10, 6)
