"""Unit tests for the Table I evaluation harness."""

import numpy as np
import pytest

from repro.core.config import ExionConfig
from repro.workloads.evaluation import (
    TABLE1_METHODS,
    EvaluationReport,
    evaluate_config,
    evaluate_model,
)


@pytest.fixture(scope="module")
def mld_report():
    return evaluate_model("mld", n_samples=3, iterations=8, rng=0)


class TestEvaluateModel:
    def test_all_methods_present(self, mld_report):
        assert [m.method for m in mld_report.methods] == list(TABLE1_METHODS)

    def test_vanilla_is_reference(self, mld_report):
        vanilla = mld_report.method("vanilla")
        assert vanilla.psnr_mean == float("inf")
        assert vanilla.fid_proxy == pytest.approx(0.0, abs=1e-6)

    def test_optimized_methods_finite(self, mld_report):
        for name in TABLE1_METHODS[1:]:
            entry = mld_report.method(name)
            assert 0.0 < entry.psnr_mean < float("inf")
            assert entry.fid_proxy >= 0.0
            assert entry.is_proxy > 0.0

    def test_sparsity_targets_hit(self, mld_report):
        ffnr = mld_report.method("ffn_reuse")
        assert ffnr.inter_sparsity == pytest.approx(0.95, abs=0.05)
        assert ffnr.intra_sparsity == 0.0  # EP disabled

    def test_ep_adds_intra_sparsity(self, mld_report):
        assert mld_report.method("ffn_reuse_ep").intra_sparsity > 0.1

    def test_method_lookup_raises(self, mld_report):
        with pytest.raises(KeyError):
            mld_report.method("nonexistent")

    def test_rejects_tiny_sample_count(self):
        with pytest.raises(ValueError):
            evaluate_model("mld", n_samples=1, rng=0)

    def test_requires_vanilla_reference(self):
        with pytest.raises(ValueError, match="vanilla"):
            evaluate_model("mld", n_samples=2, iterations=4,
                           methods=("ffn_reuse",), rng=0)

    def test_unconditioned_model_runs(self):
        report = evaluate_model("dit", n_samples=2, iterations=6,
                                methods=("vanilla", "ffn_reuse"), rng=0)
        assert isinstance(report, EvaluationReport)
        assert report.n_samples == 2

    def test_rng_is_required_and_explicit(self):
        with pytest.raises(TypeError):
            evaluate_model("mld", n_samples=2, iterations=4)  # no rng
        with pytest.raises(TypeError, match="explicit"):
            evaluate_model("mld", n_samples=2, iterations=4, rng=None)

    def test_same_rng_same_report(self):
        a = evaluate_model("mld", n_samples=2, iterations=4,
                           methods=("vanilla", "ffn_reuse"), rng=7)
        b = evaluate_model("mld", n_samples=2, iterations=4,
                           methods=("vanilla", "ffn_reuse"), rng=7)
        assert a.method("ffn_reuse") == b.method("ffn_reuse")

    def test_generator_instance_accepted(self):
        report = evaluate_model(
            "mld", n_samples=2, iterations=4,
            methods=("vanilla", "ffn_reuse"),
            rng=np.random.default_rng(3),
        )
        assert report.n_samples == 2


class TestEvaluateConfig:
    def test_matches_ladder_method(self):
        """The ffn_reuse ladder rung expressed as an explicit config point
        scores identically under the same rng stream."""
        ladder = evaluate_model(
            "mld", n_samples=2, iterations=6,
            methods=("vanilla", "ffn_reuse"), rng=5,
        ).method("ffn_reuse")
        direct = evaluate_config(
            "mld",
            ExionConfig.for_model("mld", enable_eager_prediction=False),
            n_samples=2, iterations=6, rng=5,
        )
        assert direct.psnr_mean == ladder.psnr_mean
        assert direct.fid_proxy == ladder.fid_proxy
        assert direct.inter_sparsity == ladder.inter_sparsity

    def test_label_and_rng_required(self):
        result = evaluate_config(
            "mld", ExionConfig.for_model("mld"),
            n_samples=2, iterations=4, label="point", rng=0,
        )
        assert result.method == "point"
        with pytest.raises(TypeError):
            evaluate_config("mld", ExionConfig.for_model("mld"),
                            n_samples=2, iterations=4)
