"""Unit tests for the Table I evaluation harness."""

import pytest

from repro.workloads.evaluation import (
    TABLE1_METHODS,
    EvaluationReport,
    evaluate_model,
)


@pytest.fixture(scope="module")
def mld_report():
    return evaluate_model("mld", n_samples=3, iterations=8)


class TestEvaluateModel:
    def test_all_methods_present(self, mld_report):
        assert [m.method for m in mld_report.methods] == list(TABLE1_METHODS)

    def test_vanilla_is_reference(self, mld_report):
        vanilla = mld_report.method("vanilla")
        assert vanilla.psnr_mean == float("inf")
        assert vanilla.fid_proxy == pytest.approx(0.0, abs=1e-6)

    def test_optimized_methods_finite(self, mld_report):
        for name in TABLE1_METHODS[1:]:
            entry = mld_report.method(name)
            assert 0.0 < entry.psnr_mean < float("inf")
            assert entry.fid_proxy >= 0.0
            assert entry.is_proxy > 0.0

    def test_sparsity_targets_hit(self, mld_report):
        ffnr = mld_report.method("ffn_reuse")
        assert ffnr.inter_sparsity == pytest.approx(0.95, abs=0.05)
        assert ffnr.intra_sparsity == 0.0  # EP disabled

    def test_ep_adds_intra_sparsity(self, mld_report):
        assert mld_report.method("ffn_reuse_ep").intra_sparsity > 0.1

    def test_method_lookup_raises(self, mld_report):
        with pytest.raises(KeyError):
            mld_report.method("nonexistent")

    def test_rejects_tiny_sample_count(self):
        with pytest.raises(ValueError):
            evaluate_model("mld", n_samples=1)

    def test_requires_vanilla_reference(self):
        with pytest.raises(ValueError, match="vanilla"):
            evaluate_model("mld", n_samples=2, iterations=4,
                           methods=("ffn_reuse",))

    def test_unconditioned_model_runs(self):
        report = evaluate_model("dit", n_samples=2, iterations=6,
                                methods=("vanilla", "ffn_reuse"))
        assert isinstance(report, EvaluationReport)
        assert report.n_samples == 2
