"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.model == "dit"
        assert args.ablation == "all"

    def test_ablation_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--ablation", "everything"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.model == "dit"
        assert args.requests == 8
        assert args.batch_size == 8
        assert args.max_wait == 0.0
        assert not args.calibrate

    def test_serve_seed_plumbing_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--model-seed", "3", "--calibration-seed", "7"]
        )
        assert args.model_seed == 3
        assert args.calibration_seed == 7

    def test_cluster_defaults(self):
        args = build_parser().parse_args(["cluster"])
        assert args.models == "dit"
        assert args.replicas == 4
        assert args.accelerator == "exion24"
        assert args.router == "jsq"
        assert args.arrival == "poisson"
        assert args.seed == 0
        assert args.timeout is None
        assert not args.execute

    def test_cluster_choice_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--router", "random"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster", "--arrival", "weibull"])

    def test_explore_defaults(self):
        args = build_parser().parse_args(["explore"])
        assert args.strategy == "random"
        assert args.budget == 12
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.seed == 0
        assert args.objectives is None
        assert not args.cluster

    def test_explore_choice_validation(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["explore", "--strategy", "bayesian"])

    def test_explore_set_is_repeatable(self):
        args = build_parser().parse_args([
            "explore", "--set", "num_dscs=4,24", "--set", "dram=gddr6",
        ])
        assert args.set == ["num_dscs=4,24", "dram=gddr6"]

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench", "--list"])
        assert args.list
        assert args.run is None
        assert args.out == "bench_results"
        assert args.latency_tol == 0.10
        assert not args.strict


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "stable_diffusion" in out
        assert "N=2" in out  # DiT's FFN-Reuse config

    def test_generate(self, capsys):
        code = main([
            "generate", "--model", "mld", "--iterations", "6",
            "--compare-vanilla",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ffn_output_sparsity" in out
        assert "PSNR vs vanilla" in out

    def test_generate_with_class_label(self, capsys):
        code = main([
            "generate", "--model", "dit", "--iterations", "4",
            "--class-label", "3", "--ablation", "ffnr",
        ])
        assert code == 0

    def test_serve(self, capsys):
        code = main([
            "serve", "--model", "dit", "--requests", "5",
            "--batch-size", "2", "--iterations", "5", "--class-label", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Served dit" in out
        assert "batches=3" in out
        assert "samples/s" in out

    def test_serve_compare_sequential(self, capsys):
        code = main([
            "serve", "--model", "mdm", "--requests", "2",
            "--batch-size", "2", "--iterations", "4",
            "--compare-sequential",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "speedup" in out

    def test_serve_zero_requests(self, capsys):
        code = main([
            "serve", "--requests", "0", "--iterations", "4",
            "--compare-sequential",
        ])
        assert code == 0
        assert "batches=0" in capsys.readouterr().out

    def test_serve_max_wait_tail_batch(self, capsys):
        code = main([
            "serve", "--model", "dit", "--requests", "3",
            "--batch-size", "2", "--iterations", "4",
            "--max-wait", "0.05", "--class-label", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # 3 requests at batch size 2: one full batch, one waited-out tail.
        assert "batches=2" in out

    def test_cluster(self, capsys):
        code = main([
            "cluster", "--replicas", "2", "--requests", "16",
            "--rate", "200", "--router", "jsq",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "jsq routing, 2 x exion24" in out.lower() or "jsq" in out
        assert "Per-replica usage" in out
        assert "replica1" in out

    def test_cluster_json_is_seed_deterministic(self, capsys, tmp_path):
        import json

        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        argv = ["cluster", "--replicas", "2", "--requests", "12",
                "--rate", "300", "--router", "cache_affinity",
                "--seed", "5", "--slo-target", "1.0"]
        assert main(argv + ["--json", str(first)]) == 0
        assert main(argv + ["--json", str(second)]) == 0
        assert first.read_bytes() == second.read_bytes()
        data = json.loads(first.read_text())
        assert data["submitted"] == 12
        assert data["scenario"]["router"] == "cache_affinity"
        assert data["scenario"]["seed"] == 5

    def test_cluster_trace_round_trip(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        assert main([
            "cluster", "--requests", "10", "--rate", "100",
            "--replicas", "1", "--save-trace", str(trace_path),
        ]) == 0
        capsys.readouterr()
        assert main([
            "cluster", "--trace", str(trace_path), "--replicas", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "submitted        10" in out

    def test_cluster_mmpp_with_slo(self, capsys):
        assert main([
            "cluster", "--arrival", "mmpp", "--requests", "12",
            "--rate", "400", "--replicas", "1", "--timeout", "2.0",
            "--max-queue-depth", "8", "--slo-target", "0.5",
        ]) == 0
        assert "SLO attainment" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--model", "mdm"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "EXION24" in out

    def test_simulate_edge(self, capsys):
        assert main(["simulate", "--model", "mld",
                     "--accelerator", "exion4"]) == 0
        assert "EXION4" in capsys.readouterr().out

    def test_opcount(self, capsys):
        assert main(["opcount"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_conmerge(self, capsys):
        assert main(["conmerge", "--model", "mdm"]) == 0
        out = capsys.readouterr().out
        assert "condensing" in out
        assert "merging" in out

    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "fig06_ffn_reuse" in out
        assert "serve_throughput" in out

    def test_bench_requires_an_action(self, capsys):
        assert main(["bench"]) == 2

    def test_bench_run_writes_schema_valid_json(self, capsys, tmp_path):
        import json

        from repro.bench.schema import validate_aggregate, validate_result

        assert main(["bench", "--run", "table2_specs",
                     "--out", str(tmp_path), "--show"]) == 0
        out = capsys.readouterr().out
        assert "Ran 1 benches" in out
        assert "Table II" in out  # --show renders the table
        result = json.loads((tmp_path / "BENCH_table2_specs.json").read_text())
        validate_result(result)
        assert result["metrics"]["exion4.peak_tops"]["value"] == 39.2
        aggregate = json.loads((tmp_path / "BENCH_repro.json").read_text())
        validate_aggregate(aggregate)

    def test_bench_compare_identical_and_regressed(self, capsys, tmp_path):
        import json

        assert main(["bench", "--run", "table2_specs",
                     "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        baseline = tmp_path / "BENCH_repro.json"
        assert main(["bench", "--compare", str(baseline),
                     str(baseline)]) == 0
        assert "no differences" in capsys.readouterr().out

        data = json.loads(baseline.read_text())
        bench = data["results"]["table2_specs"]
        bench["timing"]["wall_s"] = bench["timing"]["wall_s"] * 1.2 + 1.0
        slower = tmp_path / "BENCH_slower.json"
        slower.write_text(json.dumps(data))
        assert main(["bench", "--compare", str(baseline),
                     str(slower)]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out


class TestVersion:
    def test_version_flag_prints_and_exits_zero(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_version_single_sourced_from_pyproject(self):
        """repro.__version__ comes from the [project] table, one place."""
        from pathlib import Path

        import repro
        from repro._version import _from_pyproject

        pyproject = (
            Path(__file__).resolve().parents[1] / "pyproject.toml"
        ).read_text(encoding="utf-8")
        assert f'version = "{repro.__version__}"' in pyproject
        assert _from_pyproject() == repro.__version__

    def test_regex_fallback_survives_reordered_project_table(self):
        """The 3.10 parser must not stop at a bracketed value that
        precedes the version key."""
        from repro._version import _regex_version

        text = (
            '[build-system]\nrequires = ["setuptools"]\n\n'
            '[project]\nname = "repro"\ndependencies = ["numpy"]\n'
            'version = "9.9.9"\n\n[tool.ruff]\nline-length = 100\n'
        )
        assert _regex_version(text) == "9.9.9"
        assert _regex_version("no project table here") is None


class TestProgramCommand:
    def test_program_defaults(self):
        args = build_parser().parse_args(["program"])
        assert args.model == "dit"
        assert args.ablation == "all"
        assert not args.json

    def test_program_renders_table(self, capsys):
        assert main(["program", "--model", "dit"]) == 0
        out = capsys.readouterr().out
        assert "IterationProgram dit" in out
        assert "ffn_linear1" in out
        assert "plan digest" in out

    def test_program_json_is_canonical_plan(self, capsys):
        import json as _json

        from repro.program import lower_plan, plan_json
        from repro.workloads.specs import get_spec

        assert main(["program", "--model", "mld", "--json"]) == 0
        out = capsys.readouterr().out
        assert out == plan_json(lower_plan(get_spec("mld")))
        doc = _json.loads(out)
        assert doc["program"]["model"] == "mld"

    def test_program_ablation_shapes_plan(self, capsys):
        import json as _json

        assert main(["program", "--model", "dit", "--ablation", "base",
                     "--iterations", "5", "--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert doc["enable_ffn_reuse"] is False
        assert doc["totals"]["iterations"] == 5

    def test_program_compile_renders_schedule(self, capsys):
        assert main(["program", "--model", "dit", "--iterations", "10",
                     "--compile"]) == 0
        out = capsys.readouterr().out
        assert "CompiledPlan dit" in out
        assert "10 iterations -> 4 phases" in out
        assert "16x16 tiles" in out
        assert "ffn index sets:" in out
        assert "attention index sets:" in out

    def test_program_compile_truncates_long_schedules(self, capsys):
        assert main(["program", "--model", "dit", "--ablation", "base",
                     "--compile"]) == 0
        out = capsys.readouterr().out
        assert "(88 more)" in out  # 100 dense-only phases, 12 shown
        assert "no sparse index sets" in out

    def test_program_compile_json_matches_compiled_plan(self, capsys):
        import json as _json

        from repro.core.config import ExionConfig
        from repro.program import compile_plan, lower_plan
        from repro.workloads.specs import get_spec

        assert main(["program", "--model", "mld", "--compile",
                     "--json"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        plan = lower_plan(get_spec("mld"),
                          config=ExionConfig.for_model("mld"))
        assert doc == compile_plan(plan).index_set_stats()
        assert doc["ffn"]["mask_shape"] == [
            plan.program.tokens, plan.program.hidden
        ]
