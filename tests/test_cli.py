"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate"])
        assert args.model == "dit"
        assert args.ablation == "all"

    def test_ablation_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "--ablation", "everything"])


class TestCommands:
    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "stable_diffusion" in out
        assert "N=2" in out  # DiT's FFN-Reuse config

    def test_generate(self, capsys):
        code = main([
            "generate", "--model", "mld", "--iterations", "6",
            "--compare-vanilla",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "ffn_output_sparsity" in out
        assert "PSNR vs vanilla" in out

    def test_generate_with_class_label(self, capsys):
        code = main([
            "generate", "--model", "dit", "--iterations", "4",
            "--class-label", "3", "--ablation", "ffnr",
        ])
        assert code == 0

    def test_simulate(self, capsys):
        assert main(["simulate", "--model", "mdm"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "EXION24" in out

    def test_simulate_edge(self, capsys):
        assert main(["simulate", "--model", "mld",
                     "--accelerator", "exion4"]) == 0
        assert "EXION4" in capsys.readouterr().out

    def test_opcount(self, capsys):
        assert main(["opcount"]) == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_conmerge(self, capsys):
        assert main(["conmerge", "--model", "mdm"]) == 0
        out = capsys.readouterr().out
        assert "condensing" in out
        assert "merging" in out
