"""Unit tests for typed parameter spaces and canonical point encoding."""

import numpy as np
import pytest

from repro.explore.space import (
    Categorical,
    FloatRange,
    IntRange,
    SearchSpace,
    cluster_space,
    default_space,
    dimension_from_dict,
    point_id,
    point_key,
    stable_seed,
)


class TestDimensions:
    def test_categorical_grid_and_contains(self):
        dim = Categorical("dram", ("lpddr5", "gddr6"))
        assert dim.grid() == ["lpddr5", "gddr6"]
        assert dim.contains("gddr6")
        assert not dim.contains("hbm3")

    def test_categorical_rejects_empty(self):
        with pytest.raises(ValueError, match="needs >= 1 value"):
            Categorical("x", ())

    def test_int_grid_is_unique_sorted_ints(self):
        dim = IntRange("num_dscs", 2, 48)
        grid = dim.grid(5)
        assert grid == sorted(set(grid))
        assert all(isinstance(v, int) for v in grid)
        assert grid[0] == 2 and grid[-1] == 48

    def test_int_contains_rejects_fractional(self):
        dim = IntRange("n", 0, 8)
        assert dim.contains(4)
        assert dim.contains(4.0)  # integral float is fine
        assert not dim.contains(4.5)
        assert not dim.contains(9)
        assert not dim.contains(True)  # bools are not integers here

    def test_single_level_grid_is_one_point(self):
        assert IntRange("n", 2, 48).grid(1) == [2]
        assert FloatRange("bw", 51.0, 819.0).grid(1) == [51.0]

    def test_float_log_grid_spans_bounds(self):
        dim = FloatRange("bw", 51.0, 1935.0, log=True)
        grid = dim.grid(3)
        assert grid[0] == pytest.approx(51.0)
        assert grid[-1] == pytest.approx(1935.0)
        assert grid[1] == pytest.approx((51.0 * 1935.0) ** 0.5, rel=1e-6)

    def test_bounds_validation(self):
        with pytest.raises(ValueError, match="low"):
            IntRange("x", 5, 2)
        with pytest.raises(ValueError, match="log"):
            FloatRange("x", 0.0, 1.0, log=True)

    def test_round_trip(self):
        for dim in (Categorical("a", (1, 2)), IntRange("b", 0, 4, log=False),
                    FloatRange("c", 0.5, 2.0, log=True)):
            assert dimension_from_dict(dim.to_dict()) == dim
        with pytest.raises(ValueError, match="unknown dimension kind"):
            dimension_from_dict({"kind": "complex", "name": "z"})


class TestSearchSpace:
    def space(self):
        return SearchSpace([
            IntRange("num_dscs", 2, 48),
            FloatRange("bandwidth_gbps", 51.0, 1935.0, log=True),
            Categorical("enable_ffn_reuse", (True, False)),
        ])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace([IntRange("x", 0, 1), Categorical("x", (1,))])

    def test_sampling_is_deterministic(self):
        space = self.space()
        assert space.sample_batch(5, rng=7) == space.sample_batch(5, rng=7)
        assert space.sample_batch(5, rng=7) != space.sample_batch(5, rng=8)

    def test_sample_accepts_generator(self):
        space = self.space()
        a = space.sample(np.random.default_rng(3))
        b = space.sample(np.random.default_rng(3))
        assert a == b

    def test_samples_lie_inside(self):
        space = self.space()
        for point in space.sample_batch(20, rng=0):
            space.validate(point)

    def test_grid_is_declaration_order_major(self):
        space = SearchSpace([
            Categorical("a", (1, 2)), Categorical("b", ("x", "y")),
        ])
        assert space.grid() == [
            {"a": 1, "b": "x"}, {"a": 1, "b": "y"},
            {"a": 2, "b": "x"}, {"a": 2, "b": "y"},
        ]

    def test_grid_levels_dict(self):
        space = self.space()
        grid = space.grid({"num_dscs": 2, "bandwidth_gbps": 2})
        assert len(grid) == 2 * 2 * 2

    def test_validate_errors(self):
        space = self.space()
        good = space.sample(rng=0)
        with pytest.raises(ValueError, match="missing dimension"):
            space.validate({k: v for k, v in good.items()
                            if k != "num_dscs"})
        with pytest.raises(ValueError, match="unknown dimension"):
            space.validate({**good, "bogus": 1})
        with pytest.raises(ValueError, match="outside dimension"):
            space.validate({**good, "num_dscs": 1000})

    def test_restrict(self):
        space = self.space().restrict("num_dscs", (4, 24))
        assert space.dimension("num_dscs").values == (4, 24)
        with pytest.raises(ValueError, match="outside dimension"):
            self.space().restrict("num_dscs", (4, 1000))

    def test_restrict_coerces_value_types(self):
        # JSON-parsed "--set num_dscs=24.0" must not split the cache.
        space = self.space().restrict("num_dscs", (24.0,))
        assert space.dimension("num_dscs").values == (24,)
        assert isinstance(space.dimension("num_dscs").values[0], int)

    def test_normalize_makes_encoding_type_stable(self):
        space = self.space()
        typed = space.normalize({
            "num_dscs": 24, "bandwidth_gbps": 819.0,
            "enable_ffn_reuse": True,
        })
        sloppy = space.normalize({
            "num_dscs": 24.0, "bandwidth_gbps": 819,
            "enable_ffn_reuse": True,
        })
        assert point_key(typed) == point_key(sloppy)
        assert point_id(typed) == point_id(sloppy)
        with pytest.raises(ValueError, match="outside dimension"):
            space.normalize({"num_dscs": 24.5, "bandwidth_gbps": 819.0,
                             "enable_ffn_reuse": True})

    def test_round_trip(self):
        space = self.space()
        clone = SearchSpace.from_dict(space.to_dict())
        assert clone.to_dict() == space.to_dict()
        assert clone.grid(2) == space.grid(2)


class TestCanonicalEncoding:
    def test_point_key_is_order_insensitive(self):
        assert point_key({"a": 1, "b": 2.5}) == point_key({"b": 2.5, "a": 1})

    def test_point_key_normalizes_numpy_scalars(self):
        assert point_key({"a": np.int64(3), "b": np.float64(0.5)}) == (
            point_key({"a": 3, "b": 0.5})
        )

    def test_point_id_is_short_and_stable(self):
        a = point_id({"x": 1})
        assert a == point_id({"x": 1})
        assert a != point_id({"x": 2})
        assert len(a) == 12

    def test_stable_seed_is_cross_process_stable(self):
        # A pinned value: hash() would vary with PYTHONHASHSEED.
        assert stable_seed(0, "point", "x") == stable_seed(0, "point", "x")
        assert 0 <= stable_seed("anything", 42) < 2**31
        assert stable_seed(0, "a") != stable_seed(0, "b")


class TestBuiltinSpaces:
    def test_default_space_covers_required_knobs(self):
        space = default_space("dit")
        for knob in ("num_dscs", "dram", "bandwidth_gbps", "gsc_mb",
                     "enable_ffn_reuse", "sparse_iters_n", "top_k_ratio",
                     "prediction_bits"):
            assert knob in space
        space.validate(space.sample(rng=0))

    def test_cluster_space_adds_fleet_knobs(self):
        space = cluster_space("dit")
        for knob in ("replicas", "router", "rate_rps"):
            assert knob in space
        space.validate(space.sample(rng=0))
