"""Unit tests for the exploration runner: cache, parallelism, determinism."""

import json

import pytest

from repro.explore import (
    Categorical,
    ExploreRunner,
    GridSearch,
    IntRange,
    Objective,
    PointEvaluator,
    RandomSearch,
    SearchSpace,
    SuccessiveHalving,
    default_space,
)

SPACE = SearchSpace([
    IntRange("x", 0, 4),
    Categorical("flag", (True, False)),
])

METRIC = Objective("metric", "lower_better")


class CountingEvaluator:
    """Cheap deterministic evaluator that counts real evaluations."""

    def __init__(self):
        self.calls = 0

    def __call__(self, point, fidelity=None):
        self.calls += 1
        scale = fidelity if fidelity is not None else 1
        return {"metric": float(point["x"]) * scale + (
            0.5 if point["flag"] else 0.0
        )}

    def describe(self):
        # Identity is shared across instances so fresh runners hit the
        # cache files an earlier instance wrote.
        return {"kind": "counting", "version": 1}


class SeededEvaluator(CountingEvaluator):
    """Opts into the runner's explicit per-point seeds."""

    def __call__(self, point, fidelity=None, seed=None):
        self.calls += 1
        self.seen_seeds = getattr(self, "seen_seeds", []) + [seed]
        return {"metric": float(point["x"]) + (seed or 0) * 0.0}

    def describe(self):
        return {"kind": "seeded-counting", "version": 1}


def _runner(tmp_path=None, evaluator=None, strategy=None, seed=0):
    return ExploreRunner(
        SPACE,
        strategy if strategy is not None else GridSearch(levels=2),
        evaluator if evaluator is not None else CountingEvaluator(),
        objectives=(METRIC,),
        cache_dir=tmp_path,
        seed=seed,
    )


class TestCache:
    def test_second_run_is_all_hits_and_byte_identical(self, tmp_path):
        first = _runner(tmp_path)
        report1 = first.run()
        assert first.stats.cache_misses == first.stats.evaluated > 0
        assert first.evaluator.calls == first.stats.evaluated

        second = _runner(tmp_path)
        report2 = second.run()
        assert second.evaluator.calls == 0
        assert second.stats.cache_hits == second.stats.evaluated
        assert second.stats.hit_rate == 1.0
        assert report2.to_json() == report1.to_json()

    def test_seedless_evaluator_shares_cache_across_run_seeds(self, tmp_path):
        """CountingEvaluator takes no seed, so its numbers cannot depend
        on the runner seed — a warm cache must be reused."""
        _runner(tmp_path, seed=0).run()
        other = _runner(tmp_path, seed=1)
        other.run()
        assert other.evaluator.calls == 0
        assert other.stats.cache_hits == other.stats.evaluated

    def test_seeded_evaluator_misses_across_run_seeds(self, tmp_path):
        first = _runner(tmp_path, seed=0, evaluator=SeededEvaluator())
        first.run()
        other = _runner(tmp_path, seed=1, evaluator=SeededEvaluator())
        other.run()
        assert other.stats.cache_misses == other.stats.evaluated

    def test_corrupt_cache_entry_is_reevaluated(self, tmp_path):
        runner = _runner(tmp_path)
        runner.run()
        entries = list(tmp_path.rglob("*.json"))
        assert entries
        entries[0].write_text("{ torn", encoding="utf-8")
        again = _runner(tmp_path)
        again.run()
        assert again.evaluator.calls == 1
        assert again.stats.cache_misses == 1

    def test_cache_entry_records_full_identity(self, tmp_path):
        runner = _runner(tmp_path)
        runner.run()
        entry = json.loads(
            sorted(tmp_path.rglob("*.json"))[0].read_text(encoding="utf-8")
        )
        assert set(entry) == {"key", "point", "seed", "fidelity",
                              "objectives"}

    def test_no_cache_dir_always_evaluates(self):
        runner = _runner(None)
        runner.run()
        assert runner.stats.cache_hits == 0
        assert runner.stats.cache_misses == runner.stats.evaluated


class TestDeterminism:
    def test_parallel_and_serial_reports_are_identical(self):
        """The acceptance contract: --workers N never changes the bytes.

        Uses the real (importable) evaluator because worker processes
        re-import it by module path.
        """
        space = default_space("dit").restrict("num_dscs", (4, 24))
        evaluator = PointEvaluator(
            objectives=("latency_s", "energy_j"), iterations=4,
        )
        serial = ExploreRunner(
            space, RandomSearch(budget=4), evaluator, workers=1, seed=0,
        ).run()
        parallel = ExploreRunner(
            space, RandomSearch(budget=4), evaluator, workers=4, seed=0,
        ).run()
        assert parallel.to_json() == serial.to_json()
        assert parallel.frontier == serial.frontier

    def test_per_point_seeds_are_stable_and_reach_the_evaluator(self):
        a_eval, b_eval = SeededEvaluator(), SeededEvaluator()
        a = _runner(evaluator=a_eval).run()
        b = _runner(evaluator=b_eval).run()
        seeds = [e["seed"] for e in a.evaluations]
        assert seeds == [e["seed"] for e in b.evaluations]
        assert len(set(seeds)) == len(seeds)
        # The recorded seeds are the ones the evaluator actually received.
        assert a_eval.seen_seeds == seeds

    def test_seedless_evaluator_records_null_seed(self):
        report = _runner().run()
        assert all(e["seed"] is None for e in report.evaluations)


class TestRunnerProtocol:
    def test_grid_report_shape(self):
        runner = _runner()
        report = runner.run()
        assert len(report.evaluations) == 2 * 2
        # lowest x, flag off is the single best point on one objective
        assert len(report.frontier) == 1
        best = report.evaluation(report.frontier[0])
        assert best["point"]["x"] == 0 and best["point"]["flag"] is False
        assert report.knee == report.frontier[0]

    def test_halving_final_rung_competes(self):
        strategy = SuccessiveHalving(budget=4, eta=2.0, fidelities=(1, 2),
                                     rank_by=METRIC)
        runner = ExploreRunner(
            SPACE, strategy, CountingEvaluator(), objectives=(METRIC,),
            seed=0,
        )
        report = runner.run()
        top = [e for e in report.evaluations if e["fidelity"] == 2]
        assert set(report.frontier) <= {e["id"] for e in top}
        assert runner.stats.rounds == 2
        # Frontier lookups resolve to the top rung, not the cheap one:
        # CountingEvaluator scales its metric by fidelity.
        for eval_id in report.frontier:
            entry = report.evaluation(eval_id)
            assert entry["fidelity"] == 2
        knee = report.knee_evaluation()
        assert knee is not None and knee["fidelity"] == 2

    def test_rank_objective_must_be_an_objective(self):
        strategy = SuccessiveHalving(budget=2, fidelities=(1, 2),
                                     rank_by="latency_s")
        with pytest.raises(ValueError, match="not among"):
            ExploreRunner(SPACE, strategy, CountingEvaluator(),
                          objectives=(METRIC,))

    def test_invalid_point_rejected(self):
        bad_space = SearchSpace([IntRange("x", 0, 4)])

        class BadStrategy(GridSearch):
            def start(self, space, rng):
                self._pending = [[{"x": 99}]]

        with pytest.raises(ValueError, match="outside dimension"):
            ExploreRunner(bad_space, BadStrategy(), CountingEvaluator(),
                          objectives=(METRIC,)).run()

    def test_workers_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ExploreRunner(SPACE, GridSearch(), CountingEvaluator(),
                          objectives=(METRIC,), workers=0)

    def test_objectives_required_for_plain_callables(self):
        with pytest.raises(ValueError, match="objectives"):
            ExploreRunner(SPACE, GridSearch(), lambda p, f=None: {})
