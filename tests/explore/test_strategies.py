"""Unit tests for the search strategies' ask/tell protocol."""

import pytest

from repro.explore.runner import EvaluationRecord
from repro.explore.space import Categorical, IntRange, SearchSpace, point_id
from repro.explore.strategies import (
    GridSearch,
    RandomSearch,
    SuccessiveHalving,
    make_strategy,
)
from repro.workloads.generator import as_rng

SPACE = SearchSpace([
    IntRange("x", 0, 10),
    Categorical("flag", (True, False)),
])


def _records(points, latencies, fidelity=None):
    return [
        EvaluationRecord(point=p, id=point_id(p), seed=0, fidelity=fidelity,
                         objectives={"latency_s": lat})
        for p, lat in zip(points, latencies)
    ]


class TestGridSearch:
    def test_single_round_cross_product(self):
        strategy = GridSearch(levels=3)
        strategy.start(SPACE, as_rng(0))
        batch = strategy.ask()
        assert len(batch) == 3 * 2
        assert strategy.fidelity() is None
        strategy.tell(_records(batch, range(len(batch))))
        assert strategy.ask() is None

    def test_describe_is_canonical(self):
        assert GridSearch(levels=2).describe() == {
            "strategy": "grid", "levels": 2,
        }


class TestRandomSearch:
    def test_budget_and_determinism(self):
        a = RandomSearch(budget=5)
        a.start(SPACE, as_rng(3))
        b = RandomSearch(budget=5)
        b.start(SPACE, as_rng(3))
        batch_a, batch_b = a.ask(), b.ask()
        assert batch_a == batch_b
        assert len(batch_a) == 5
        assert a.ask() is None

    def test_rejects_empty_budget(self):
        with pytest.raises(ValueError, match="budget"):
            RandomSearch(budget=0)


class TestSuccessiveHalving:
    def test_promotes_best_by_rank_objective(self):
        strategy = SuccessiveHalving(budget=4, eta=2.0, fidelities=(2, 4),
                                     rank_by="latency_s")
        strategy.start(SPACE, as_rng(0))
        rung0 = strategy.ask()
        assert len(rung0) == 4
        assert strategy.fidelity() == 2
        # Third point is fastest, first is second-fastest.
        strategy.tell(_records(rung0, [0.2, 0.9, 0.1, 0.5], fidelity=2))
        rung1 = strategy.ask()
        assert strategy.fidelity() == 4
        assert rung1 == [rung0[0], rung0[2]]  # submission order kept
        strategy.tell(_records(rung1, [0.2, 0.1], fidelity=4))
        assert strategy.ask() is None

    def test_higher_better_rank_objective(self):
        strategy = SuccessiveHalving(budget=2, eta=2.0, fidelities=(2, 4),
                                     rank_by="accuracy_psnr_db")
        strategy.start(SPACE, as_rng(0))
        rung0 = strategy.ask()
        strategy.tell([
            EvaluationRecord(point=p, id=point_id(p), seed=0, fidelity=2,
                             objectives={"accuracy_psnr_db": db})
            for p, db in zip(rung0, [10.0, 30.0])
        ])
        assert strategy.ask() == [rung0[1]]

    def test_validation(self):
        with pytest.raises(ValueError, match="eta"):
            SuccessiveHalving(eta=1.0)
        with pytest.raises(ValueError, match="ascend"):
            SuccessiveHalving(fidelities=(8, 4))
        with pytest.raises(ValueError, match="unknown objective"):
            SuccessiveHalving(rank_by="made_up")


class TestFactory:
    def test_make_strategy(self):
        assert isinstance(make_strategy("grid"), GridSearch)
        assert make_strategy("random", budget=3).budget == 3
        with pytest.raises(ValueError, match="unknown strategy"):
            make_strategy("annealing")
