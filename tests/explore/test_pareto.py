"""Unit tests for Pareto extraction and the built-in objectives."""

import pytest

from repro.core.config import ExionConfig
from repro.explore.objectives import (
    Objective,
    PointEvaluator,
    accelerator_from_point,
    config_from_point,
    get_objective,
    knee_point,
    pareto_front,
)

LAT = Objective("latency_s", "lower_better", "s")
ACC = Objective("accuracy_psnr_db", "higher_better", "dB")


class TestParetoFront:
    def test_hand_built_frontier(self):
        """Five points: three on the frontier, one dominated, one duplicate
        of a frontier point (kept — neither dominates the other)."""
        values = [
            {"latency_s": 1.0, "accuracy_psnr_db": 10.0},  # frontier
            {"latency_s": 2.0, "accuracy_psnr_db": 20.0},  # frontier
            {"latency_s": 3.0, "accuracy_psnr_db": 30.0},  # frontier
            {"latency_s": 2.5, "accuracy_psnr_db": 15.0},  # dominated by [1]
            {"latency_s": 2.0, "accuracy_psnr_db": 20.0},  # duplicate of [1]
        ]
        assert pareto_front(values, [LAT, ACC]) == [0, 1, 2, 4]

    def test_single_objective_collapses_to_best(self):
        values = [{"latency_s": v} for v in (3.0, 1.0, 2.0)]
        assert pareto_front(values, [LAT]) == [1]

    def test_direction_matters(self):
        values = [{"accuracy_psnr_db": 10.0}, {"accuracy_psnr_db": 20.0}]
        assert pareto_front(values, [ACC]) == [1]

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError, match="not finite"):
            pareto_front([{"latency_s": float("inf")}], [LAT])


class TestKneePoint:
    def test_knee_is_closest_to_ideal_corner(self):
        # An L-shaped frontier: the corner point is the knee.
        values = [
            {"latency_s": 1.0, "accuracy_psnr_db": 10.0},
            {"latency_s": 1.1, "accuracy_psnr_db": 29.0},  # the corner
            {"latency_s": 3.0, "accuracy_psnr_db": 30.0},
        ]
        assert knee_point(values, [LAT, ACC]) == 1

    def test_empty_and_single(self):
        assert knee_point([], [LAT]) is None
        assert knee_point([{"latency_s": 1.0}], [LAT]) == 0


class TestObjectiveRegistry:
    def test_known_and_unknown(self):
        assert get_objective("latency_s").direction == "lower_better"
        assert get_objective("accuracy_psnr_db").direction == "higher_better"
        with pytest.raises(ValueError, match="unknown objective"):
            get_objective("throughput_mph")

    def test_direction_validation(self):
        with pytest.raises(ValueError, match="direction"):
            Objective("x", "sideways_better")


class TestPointMapping:
    def test_config_from_point_overrides_algo_knobs(self):
        config = config_from_point("dit", {
            "enable_ffn_reuse": False, "top_k_ratio": 0.25,
            "num_dscs": 8,  # hardware knob: ignored by the config
        })
        assert config.enable_ffn_reuse is False
        assert config.top_k_ratio == 0.25
        assert config.sparse_iters_n == (
            ExionConfig.for_model("dit").sparse_iters_n
        )

    def test_config_validation_still_applies(self):
        with pytest.raises(ValueError, match="top_k_ratio"):
            config_from_point("dit", {"top_k_ratio": 0.0})

    def test_accelerator_from_point(self):
        acc = accelerator_from_point({
            "num_dscs": 8, "dram": "lpddr5", "bandwidth_gbps": 100.0,
            "gsc_mb": 16.0,
        })
        assert acc.num_dscs == 8
        assert acc.dram.bandwidth_gbps == 100.0
        assert acc.gsc_bytes == int(16.0 * 1024 * 1024 / 8) * 8


class TestPointEvaluator:
    def test_hardware_objectives(self):
        evaluator = PointEvaluator(
            objectives=("latency_s", "energy_j", "tops_per_watt"),
            iterations=4,
        )
        small = evaluator({"num_dscs": 4, "bandwidth_gbps": 51.0})
        big = evaluator({"num_dscs": 24, "bandwidth_gbps": 819.0})
        assert set(small) == {"latency_s", "energy_j", "tops_per_watt"}
        assert big["latency_s"] < small["latency_s"]

    def test_accuracy_depends_only_on_algorithm_knobs(self):
        evaluator = PointEvaluator(
            objectives=("accuracy_psnr_db",), iterations=4,
        )
        edge = evaluator({"num_dscs": 4, "top_k_ratio": 0.4})
        server = evaluator({"num_dscs": 24, "top_k_ratio": 0.4})
        other = evaluator({"num_dscs": 24, "top_k_ratio": 0.8})
        assert edge["accuracy_psnr_db"] == server["accuracy_psnr_db"]
        assert other["accuracy_psnr_db"] != edge["accuracy_psnr_db"]

    def test_cluster_objectives(self):
        evaluator = PointEvaluator(
            objectives=("slo_attainment", "samples_per_s"),
            iterations=4, cluster_requests=16,
        )
        values = evaluator({
            "num_dscs": 24, "replicas": 2, "router": "jsq",
            "rate_rps": 100.0,
        })
        assert 0.0 <= values["slo_attainment"] <= 1.0
        assert values["samples_per_s"] > 0.0

    def test_value_knobs_move_hardware_objectives(self):
        """The FFN-Reuse period and sparsity target must reach the
        hardware walk, not just the two enable flags."""
        evaluator = PointEvaluator(
            objectives=("latency_s", "energy_j"), iterations=8,
        )
        dense = evaluator({"sparse_iters_n": 0})
        sparse = evaluator({"sparse_iters_n": 8})
        assert sparse["latency_s"] < dense["latency_s"]
        low = evaluator({"ffn_target_sparsity": 0.6})
        high = evaluator({"ffn_target_sparsity": 0.95})
        assert high["energy_j"] < low["energy_j"]

    def test_fidelity_overrides_iterations(self):
        evaluator = PointEvaluator(objectives=("latency_s",), iterations=8)
        full = evaluator({"num_dscs": 24})
        short = evaluator({"num_dscs": 24}, fidelity=4)
        assert short["latency_s"] < full["latency_s"]
