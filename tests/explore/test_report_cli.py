"""Tests for the ExploreReport artifact and the ``repro explore`` CLI."""

import json

import pytest

from repro.cli import main
from repro.explore import (
    Categorical,
    ExploreRunner,
    GridSearch,
    IntRange,
    Objective,
    SearchSpace,
)


def _tiny_report():
    space = SearchSpace([
        IntRange("x", 0, 2),
        Categorical("flag", (True, False)),
    ])

    def evaluate(point, fidelity=None):
        return {"metric": float(point["x"]) + (0.5 if point["flag"] else 0.0)}

    return ExploreRunner(
        space, GridSearch(levels=2), evaluate,
        objectives=(Objective("metric", "lower_better"),), seed=0,
    ).run()


class TestExploreReport:
    def test_round_trip_preserves_canonical_json(self):
        report = _tiny_report()
        clone = type(report).from_dict(json.loads(report.to_json()))
        assert clone.to_json() == report.to_json()

    def test_stats_are_outside_the_canonical_document(self):
        report = _tiny_report()
        assert report.stats is not None
        assert "stats" not in json.loads(report.to_json())

    def test_lookup_helpers(self):
        report = _tiny_report()
        assert report.frontier_evaluations()[0]["id"] == report.frontier[0]
        assert report.knee_evaluation()["id"] == report.knee
        with pytest.raises(KeyError):
            report.evaluation("nope")

    def test_render_mentions_frontier(self):
        text = _tiny_report().render()
        assert "Pareto frontier" in text
        assert "knee point" in text

    def test_bench_projection_validates(self):
        from repro.bench import validate_result

        result = _tiny_report().to_bench_result("explore_test")
        data = result.to_dict()
        validate_result(data)
        assert data["metrics"]["n_evaluations"]["value"] == 4.0
        assert data["metrics"]["frontier_best.metric"]["value"] == 0.0


EXPLORE_ARGS = [
    "explore", "--strategy", "random", "--budget", "3",
    "--iterations", "4",
    "--set", "num_dscs=4,24",
    "--set", "bandwidth_gbps=51.0,819.0",
    "--set", "enable_ffn_reuse=true",
    "--seed", "5",
]


class TestExploreCLI:
    def test_json_byte_identical_and_second_run_all_hits(
        self, tmp_path, capsys
    ):
        cache = str(tmp_path / "cache")
        out1, out2 = str(tmp_path / "a.json"), str(tmp_path / "b.json")
        assert main(EXPLORE_ARGS + ["--cache-dir", cache,
                                    "--json", out1]) == 0
        first = capsys.readouterr().out
        assert "cache_misses=3" in first
        assert main(EXPLORE_ARGS + ["--cache-dir", cache,
                                    "--json", out2]) == 0
        second = capsys.readouterr().out
        assert "cache_hits=3" in second
        assert "hit rate 100.0%" in second
        with open(out1, "rb") as a, open(out2, "rb") as b:
            assert a.read() == b.read()

    def test_json_document_shape(self, tmp_path, capsys):
        out = str(tmp_path / "r.json")
        assert main(EXPLORE_ARGS + ["--json", out]) == 0
        capsys.readouterr()
        data = json.loads(open(out, encoding="utf-8").read())
        assert set(data) == {"space", "strategy", "objectives", "seed",
                             "evaluations", "frontier", "knee"}
        assert data["strategy"]["budget"] == 3
        assert len(data["evaluations"]) == 3
        assert [o["name"] for o in data["objectives"]] == [
            "latency_s", "energy_j", "accuracy_psnr_db",
        ]

    def test_grid_strategy_with_space_file(self, tmp_path, capsys):
        space_file = tmp_path / "space.json"
        space_file.write_text(json.dumps({
            "dimensions": [
                {"kind": "categorical", "name": "model", "values": ["dit"]},
                {"kind": "categorical", "name": "num_dscs",
                 "values": [4, 24]},
            ]
        }), encoding="utf-8")
        code = main([
            "explore", "--strategy", "grid", "--space", str(space_file),
            "--objectives", "latency_s,energy_j", "--iterations", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "evaluated=2" in out
        assert "Pareto frontier" in out

    def test_bad_set_expression_exits(self):
        with pytest.raises(SystemExit):
            main(["explore", "--set", "num_dscs"])
