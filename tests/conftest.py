"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.models.zoo import build_model


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def dit_model():
    """A small DiT with few iterations, shared across read-only tests."""
    return build_model("dit", seed=0, total_iterations=9)


@pytest.fixture(scope="session")
def sd_model():
    """A Type-2 (ResBlock UNet) model, shared across read-only tests."""
    return build_model("stable_diffusion", seed=0, total_iterations=10)


@pytest.fixture(scope="session")
def mld_model():
    """A Type-1 (UNet without ResBlocks) model."""
    return build_model("mld", seed=0, total_iterations=10)
