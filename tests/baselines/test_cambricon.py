"""Unit tests for the Cambricon-D baseline model."""

import pytest

from repro.baselines.cambricon_d import CambriconDModel
from repro.workloads.specs import get_spec


class TestCambriconD:
    def test_conv_heavy_model_gets_big_speedup(self):
        cd = CambriconDModel()
        sd = cd.simulate(get_spec("stable_diffusion"))
        dit = cd.simulate(get_spec("dit"))
        assert sd.speedup_vs_gpu > dit.speedup_vs_gpu

    def test_pure_transformer_capped_at_transformer_speedup(self):
        cd = CambriconDModel(transformer_speedup=3.3)
        report = cd.simulate(get_spec("dit"))
        assert report.speedup_vs_gpu == pytest.approx(3.3, rel=0.01)

    def test_speedup_at_least_one(self):
        cd = CambriconDModel()
        for name in ("stable_diffusion", "dit", "make_an_audio"):
            assert cd.simulate(get_spec(name)).speedup_vs_gpu >= 1.0

    def test_rejects_sub_unity_speedups(self):
        with pytest.raises(ValueError):
            CambriconDModel(conv_delta_speedup=0.5)

    def test_latency_consistent_with_speedup(self):
        cd = CambriconDModel()
        spec = get_spec("stable_diffusion")
        gpu_latency = cd.gpu.simulate(spec).latency_s
        report = cd.simulate(spec)
        assert report.latency_s == pytest.approx(
            gpu_latency / report.speedup_vs_gpu
        )

    def test_fig19b_crossover(self):
        """Fig. 19 (b): Cambricon-D beats EXION on Stable Diffusion but
        loses on DiT."""
        from repro.baselines.gpu import GPUModel
        from repro.baselines.specs import A100
        from repro.hw.accelerator import ExionAccelerator

        cd = CambriconDModel()
        gpu = GPUModel(A100)
        ex42 = ExionAccelerator.exion42()
        sd = get_spec("stable_diffusion")
        dit = get_spec("dit")
        exion_sd = gpu.simulate(sd).latency_s / ex42.simulate(sd).latency_s
        exion_dit = gpu.simulate(dit).latency_s / ex42.simulate(dit).latency_s
        assert cd.simulate(sd).speedup_vs_gpu > exion_sd
        assert exion_dit > cd.simulate(dit).speedup_vs_gpu
