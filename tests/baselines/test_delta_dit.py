"""Unit tests for the Delta-DiT block-caching baseline."""

import numpy as np
import pytest

from repro.baselines.delta_dit import DeltaDiTPipeline
from repro.models.zoo import build_model


@pytest.fixture(scope="module")
def dit():
    return build_model("dit", seed=0, total_iterations=12)


class TestDeltaDiT:
    def test_rejects_unet_models(self):
        model = build_model("stable_diffusion", seed=0, total_iterations=4)
        with pytest.raises(ValueError, match="transformer-only"):
            DeltaDiTPipeline(model)

    def test_interval_zero_matches_vanilla(self, dit):
        result = DeltaDiTPipeline(dit, cache_interval=0).generate(
            seed=1, class_label=5
        )
        vanilla = dit.make_pipeline().generate(seed=1, class_label=5)
        np.testing.assert_allclose(result.sample, vanilla.sample)
        assert result.blocks_skipped == 0
        assert result.ops_reduction == 0.0

    def test_caching_skips_blocks(self, dit):
        result = DeltaDiTPipeline(dit, cache_interval=2).generate(
            seed=1, class_label=5
        )
        assert result.blocks_skipped > 0
        assert 0.0 < result.ops_reduction < 1.0
        # Middle blocks cached, front/rear exact: with depth 4 and default
        # policy, 2 of 4 blocks are cacheable on 2 of 3 iterations.
        expected = 2 / 4 * 2 / 3
        assert result.skip_rate == pytest.approx(expected, abs=0.1)

    def test_longer_interval_skips_more(self, dit):
        short = DeltaDiTPipeline(dit, cache_interval=1).generate(seed=1)
        long = DeltaDiTPipeline(dit, cache_interval=5).generate(seed=1)
        assert long.ops_reduction > short.ops_reduction

    def test_output_close_to_vanilla(self, dit):
        from repro.workloads.metrics import psnr

        vanilla = dit.make_pipeline().generate(seed=1, class_label=5)
        result = DeltaDiTPipeline(dit, cache_interval=2).generate(
            seed=1, class_label=5
        )
        assert psnr(vanilla.sample, result.sample) > 4.0

    def test_explicit_cached_blocks(self, dit):
        pipeline = DeltaDiTPipeline(dit, cache_interval=2, cached_blocks=[1])
        assert pipeline.cached_blocks == {1}
        result = pipeline.generate(seed=1)
        # Only one of four blocks cacheable.
        assert result.skip_rate < 0.25

    def test_rejects_bad_interval(self, dit):
        with pytest.raises(ValueError):
            DeltaDiTPipeline(dit, cache_interval=-1)


class TestFFNReuseComparison:
    def test_ffn_reuse_more_accurate_at_matched_savings(self, dit):
        """The headline claim versus Delta-DiT (paper Related Work):
        element-grained reuse beats block-grained caching in accuracy at
        comparable compute savings."""
        from repro.core.config import ExionConfig
        from repro.core.pipeline import ExionPipeline
        from repro.workloads.metrics import psnr

        vanilla = dit.make_pipeline().generate(seed=1, class_label=5)
        delta = DeltaDiTPipeline(dit, cache_interval=2).generate(
            seed=1, class_label=5
        )
        cfg = ExionConfig.for_model("dit", enable_eager_prediction=False)
        ffnr = ExionPipeline(dit, cfg).generate(seed=1, class_label=5)

        psnr_delta = psnr(vanilla.sample, delta.sample)
        psnr_ffnr = psnr(vanilla.sample, ffnr.sample)
        # FFN-Reuse cuts more FFN ops than Delta-DiT cuts block ops while
        # staying at least as close to vanilla.
        assert psnr_ffnr >= psnr_delta - 1.0
