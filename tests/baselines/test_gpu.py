"""Unit tests for the GPU roofline baseline."""


from repro.baselines.gpu import GPUModel
from repro.baselines.specs import A100, EDGE_GPU, SERVER_GPU
from repro.workloads.specs import get_spec


class TestKernelModel:
    def test_launch_overhead_floor(self):
        gpu = GPUModel(SERVER_GPU)
        seconds, _ = gpu._kernel_seconds(1, 1, 1)
        assert seconds == SERVER_GPU.kernel_launch_s

    def test_large_kernels_compute_bound(self):
        gpu = GPUModel(SERVER_GPU)
        seconds, util = gpu._kernel_seconds(4096, 4096, 4096)
        assert util == SERVER_GPU.max_utilization
        assert seconds > SERVER_GPU.kernel_launch_s

    def test_small_kernels_low_utilization(self):
        gpu = GPUModel(SERVER_GPU)
        _, util = gpu._kernel_seconds(4, 256, 256)
        assert util < 0.1 * SERVER_GPU.max_utilization


class TestSimulation:
    def test_report_fields(self):
        report = GPUModel(SERVER_GPU).simulate(get_spec("dit"))
        assert report.latency_s > 0
        assert report.energy_j > 0
        assert report.effective_tops > 0
        assert report.iterations == 100

    def test_dense_ops_match_mapping(self):
        from repro.hw.mapping import iteration_macs

        spec = get_spec("mdm")
        report = GPUModel(SERVER_GPU).simulate(spec)
        expected = 2 * sum(iteration_macs(spec).values()) * 50
        assert report.dense_equivalent_ops == expected

    def test_batch_amortizes_launch_overhead(self):
        spec = get_spec("mld")
        gpu = GPUModel(SERVER_GPU)
        b1 = gpu.simulate(spec, batch=1)
        b8 = gpu.simulate(spec, batch=8)
        # Per-sample latency improves with batch on launch-bound models.
        assert b8.latency_s / 8 < b1.latency_s

    def test_edge_slower_than_server(self):
        spec = get_spec("mdm")
        edge = GPUModel(EDGE_GPU).simulate(spec)
        server = GPUModel(SERVER_GPU).simulate(spec)
        assert edge.latency_s > server.latency_s

    def test_power_between_idle_and_tdp(self):
        report = GPUModel(SERVER_GPU).simulate(get_spec("dit"))
        assert (
            SERVER_GPU.tdp_w * SERVER_GPU.idle_power_fraction
            <= report.average_power_w
            <= SERVER_GPU.tdp_w
        )

    def test_small_models_are_launch_bound(self):
        """MLD's tiny kernels leave the server GPU mostly idle — the
        source of the paper's largest speedups."""
        spec = get_spec("mld")
        gpu = GPUModel(SERVER_GPU)
        report = gpu.simulate(spec)
        pure_compute = report.dense_equivalent_ops / (
            SERVER_GPU.peak_ops_per_s * SERVER_GPU.max_utilization
        )
        assert report.latency_s > 20 * pure_compute

    def test_a100_spec_sane(self):
        assert A100.peak_ops_per_s > SERVER_GPU.peak_ops_per_s
