"""Unit tests for instruction-driven DSC execution."""

import pytest

from repro.hw.controller import Opcode, ProgramBuilder
from repro.hw.dsc import DSCModel
from repro.hw.executor import (
    ExecutionTrace,
    InstructionExecutor,
    execute_iteration,
)
from repro.hw.profile import estimate_profile
from repro.workloads.specs import BENCHMARK_ORDER, get_spec


class TestInstructionExecutor:
    @pytest.mark.parametrize("name", ["dit", "mld", "stable_diffusion"])
    def test_sdue_cycles_match_analytic_dense_model(self, name):
        """The microarchitectural cross-check: instruction-level dense SDUE
        cycles equal the analytic DSC cost model's."""
        spec = get_spec(name)
        trace = execute_iteration(spec, sparse_phase=False)
        cost = DSCModel().iteration_cost(
            spec, estimate_profile(spec, seed=0), False, False, False
        )
        assert trace.sdue_cycles == cost.sdue_cycles

    def test_repeat_multiplies_work(self):
        spec = get_spec("dit")
        builder = ProgramBuilder(spec)
        program = builder.build_iteration(False)
        trace = InstructionExecutor(spec).execute(program)
        single_block = [
            i for i in program if i.opcode is Opcode.RUN_SDUE_DENSE
        ][0]
        assert single_block.repeat == spec.paper_depth

    def test_all_models_execute(self):
        for name in BENCHMARK_ORDER:
            trace = execute_iteration(get_spec(name), sparse_phase=True)
            assert trace.sdue_cycles > 0
            assert trace.instructions > 0

    def test_dense_phase_runs_cau(self):
        trace = execute_iteration(get_spec("dit"), sparse_phase=False)
        assert trace.cau_cycles > 0
        sparse = execute_iteration(get_spec("dit"), sparse_phase=True)
        assert sparse.cau_cycles == 0

    def test_critical_path_is_max_engine(self):
        trace = ExecutionTrace(sdue_cycles=10, epre_cycles=25, cfse_cycles=5)
        assert trace.engine_critical_path == 25

    def test_loads_tracked_but_separate(self):
        trace = execute_iteration(get_spec("mdm"), sparse_phase=False)
        assert trace.load_cycles > 0
        assert trace.store_cycles > 0

    def test_by_opcode_histogram(self):
        trace = execute_iteration(get_spec("mdm"), sparse_phase=False)
        assert trace.by_opcode[Opcode.SYNC] == 1
        assert Opcode.RUN_SDUE_DENSE in trace.by_opcode
