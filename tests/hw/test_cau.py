"""Unit tests for the ConMerge assistant unit model."""

import numpy as np
import pytest

from repro.core.bitmask import Bitmask
from repro.hw.cau import CAUModel
from repro.workloads.generator import ffn_output_bitmask


class TestCAU:
    def test_process_returns_report(self, rng):
        cau = CAUModel()
        mask = Bitmask.random(32, 64, sparsity=0.9, rng=rng)
        report = cau.process(mask)
        assert report.classify_cycles == 64 * 2  # cols x row-tiles
        assert report.merge_cycles == report.result.cycles
        assert report.total_cycles > 0
        assert report.cvmem_words > 0

    def test_sorting_reduces_merge_cycles(self):
        cau = CAUModel()
        totals = {"sorted": 0, "random": 0}
        for seed in range(5):
            mask = ffn_output_bitmask(
                16, 256, 0.9, dead_col_fraction=0.2,
                rng=np.random.default_rng(seed),
            )
            totals["sorted"] += cau.process(mask, sort=True).merge_cycles
            totals["random"] += cau.process(mask, sort=False).merge_cycles
        assert totals["sorted"] < totals["random"]

    def test_single_tile_guard(self, rng):
        cau = CAUModel()
        with pytest.raises(ValueError, match="row-tile"):
            cau.single_tile(Bitmask.random(17, 8, 0.5, rng))

    def test_single_tile_matches_conmerge(self, rng):
        cau = CAUModel()
        mask = Bitmask.random(16, 64, sparsity=0.9, rng=rng)
        result = cau.single_tile(mask)
        expected = {(int(r), int(c)) for r, c in np.argwhere(mask.mask)}
        assert result.element_positions() == expected

    def test_area_share_matches_paper(self):
        """CAU accounts for 0.94% of the DSC area (paper IV-C, Table III)."""
        from repro.hw.energy import DSC_AREA_MM2

        total = sum(DSC_AREA_MM2.values())
        assert DSC_AREA_MM2["cau"] / total == pytest.approx(0.0094, abs=0.002)
