"""Cross-cutting consistency checks on the simulator's accounting.

These tests pin down invariants that individual unit tests do not cover:
energy breakdowns must sum to totals, dense-equivalent work must be
configuration-invariant, and ablation configurations must only ever remove
work, never add it.
"""

import pytest

from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import estimate_profile
from repro.workloads.specs import BENCHMARK_ORDER, get_spec


@pytest.fixture(scope="module")
def reports():
    """All ablations on three representative models, EXION24."""
    acc = ExionAccelerator.exion24()
    out = {}
    for name in ("mld", "dit", "stable_diffusion"):
        spec = get_spec(name)
        profile = estimate_profile(spec, seed=0)
        out[name] = {
            (ffnr, ep): acc.simulate(
                spec, profile, enable_ffn_reuse=ffnr,
                enable_eager_prediction=ep,
            )
            for ffnr in (False, True)
            for ep in (False, True)
        }
    return out


class TestEnergyAccounting:
    def test_breakdown_sums_to_total(self, reports):
        for by_config in reports.values():
            for report in by_config.values():
                total = sum(report.energy_breakdown_j.values())
                assert total == pytest.approx(report.energy_j, rel=1e-9)

    def test_all_components_present(self, reports):
        expected = {"sdue", "cau", "epre", "cfse", "memories",
                    "top_dma_etc", "dram"}
        for by_config in reports.values():
            for report in by_config.values():
                assert set(report.energy_breakdown_j) == expected

    def test_energy_nonnegative(self, reports):
        for by_config in reports.values():
            for report in by_config.values():
                assert all(
                    v >= 0 for v in report.energy_breakdown_j.values()
                )

    def test_average_power_below_peak(self, reports):
        """Clock gating can only lower power below the synthesis peak
        (plus DRAM interface power)."""
        acc_peak = ExionAccelerator.exion24().peak_power_w
        for by_config in reports.values():
            for report in by_config.values():
                dram_w = (
                    report.energy_breakdown_j["dram"] / report.latency_s
                )
                assert report.average_power_w <= acc_peak + dram_w + 1e-6


class TestWorkAccounting:
    def test_dense_equivalent_invariant_across_ablations(self, reports):
        """Every configuration is credited the same dense-equivalent work;
        only the computed work varies."""
        for by_config in reports.values():
            dense = {r.dense_equivalent_ops for r in by_config.values()}
            assert len(dense) == 1

    def test_optimizations_never_add_work(self, reports):
        for by_config in reports.values():
            base = by_config[(False, False)]
            for report in by_config.values():
                assert report.computed_ops <= base.computed_ops

    def test_base_computes_everything(self, reports):
        for by_config in reports.values():
            base = by_config[(False, False)]
            assert base.computed_ops == base.dense_equivalent_ops
            assert base.ops_reduction == 0.0

    def test_all_config_reduction_matches_components(self, reports):
        """The all-configuration reduction is at least each single
        optimization's reduction."""
        for by_config in reports.values():
            full = by_config[(True, True)].ops_reduction
            assert full >= by_config[(True, False)].ops_reduction - 1e-9
            assert full >= by_config[(False, True)].ops_reduction - 1e-9


class TestLatencyAccounting:
    def test_latency_positive_and_finite(self, reports):
        for by_config in reports.values():
            for report in by_config.values():
                assert 0.0 < report.latency_s < 60.0

    def test_compute_bound_fraction_valid(self, reports):
        for by_config in reports.values():
            for report in by_config.values():
                assert 0.0 <= report.compute_bound_fraction <= 1.0

    def test_effective_tops_below_dense_equivalent_bound(self, reports):
        """Effective (dense-equivalent) TOPS may exceed the physical peak
        only when work is skipped."""
        peak = ExionAccelerator.exion24().peak_tops
        for by_config in reports.values():
            base = by_config[(False, False)]
            assert base.effective_tops <= peak * 1.05


class TestAllModelsSimulate:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_every_model_on_every_instance(self, name):
        spec = get_spec(name)
        profile = estimate_profile(spec, seed=0)
        for acc in (ExionAccelerator.exion4(), ExionAccelerator.exion42()):
            report = acc.simulate(spec, profile, iterations=5)
            assert report.latency_s > 0
            assert report.energy_j > 0
