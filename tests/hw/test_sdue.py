"""Unit tests for the sparse-dense unified engine."""

import numpy as np
import pytest

from repro.core.bitmask import Bitmask
from repro.core.conmerge.cvg import conmerge, conmerge_tiled
from repro.hw.sdue import SDUEModel


class TestDensePath:
    def test_matches_numpy(self, rng):
        sdue = SDUEModel()
        a = rng.standard_normal((20, 40))
        b = rng.standard_normal((40, 24))
        np.testing.assert_allclose(sdue.run_dense(a, b), a @ b)

    def test_cycle_count(self):
        sdue = SDUEModel()
        sdue.run_dense(np.zeros((32, 32)), np.zeros((32, 32)))
        # 2 row tiles x 2 col tiles x 2 depth cycles.
        assert sdue.stats.cycles == 8
        assert sdue.stats.tiles == 4

    def test_edge_tiles_lower_utilization(self):
        sdue = SDUEModel()
        sdue.run_dense(np.zeros((17, 16)), np.zeros((16, 17)))
        assert sdue.stats.utilization < 1.0

    def test_full_tiles_full_utilization(self):
        sdue = SDUEModel()
        sdue.run_dense(np.zeros((16, 16)), np.zeros((16, 16)))
        assert sdue.stats.utilization == 1.0

    def test_dense_cycles_helper_matches_execution(self, rng):
        sdue = SDUEModel()
        predicted = sdue.dense_cycles(20, 40, 24)
        sdue.run_dense(np.zeros((20, 40)), np.zeros((40, 24)))
        assert sdue.stats.cycles == predicted

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            SDUEModel().run_dense(np.zeros((4, 5)), np.zeros((6, 4)))

    def test_macs_counted(self):
        sdue = SDUEModel()
        sdue.run_dense(np.zeros((8, 8)), np.zeros((8, 8)))
        assert sdue.stats.macs == 512


class TestMergedPath:
    def test_conmerge_execution_matches_masked_matmul(self, rng):
        """The headline correctness property: executing ConMerge blocks on
        the SDUE reproduces exactly the non-sparse elements of the dense
        result, leaving sparse positions at their baseline value."""
        sdue = SDUEModel()
        rows, k, cols = 16, 32, 48
        x = rng.standard_normal((rows, k))
        w = rng.standard_normal((k, cols))
        mask = Bitmask.random(rows, cols, sparsity=0.85, rng=rng)
        tiled = conmerge_tiled(mask, tile_rows=16)
        baseline = np.full((rows, cols), -7.0)
        out = sdue.run_conmerge(tiled, x, w, baseline)
        dense = x @ w
        np.testing.assert_allclose(out[mask.mask], dense[mask.mask])
        np.testing.assert_allclose(out[~mask.mask], -7.0)

    def test_multi_row_tile_execution(self, rng):
        sdue = SDUEModel()
        rows, k, cols = 48, 16, 32
        x = rng.standard_normal((rows, k))
        w = rng.standard_normal((k, cols))
        mask = Bitmask.random(rows, cols, sparsity=0.9, rng=rng)
        tiled = conmerge_tiled(mask, tile_rows=16)
        out = sdue.run_conmerge(tiled, x, w, np.zeros((rows, cols)))
        dense = x @ w
        np.testing.assert_allclose(out[mask.mask], dense[mask.mask])

    def test_merged_cycles_fewer_than_dense(self, rng):
        """ConMerge must reduce SDUE cycles versus dense execution of the
        same output matrix — the whole point of the mechanism."""
        rows, k, cols = 16, 32, 128
        x = rng.standard_normal((rows, k))
        w = rng.standard_normal((k, cols))
        mask = Bitmask.random(rows, cols, sparsity=0.95, rng=rng)
        dense_engine = SDUEModel()
        dense_engine.run_dense(x, w)
        merged_engine = SDUEModel()
        tiled = conmerge_tiled(mask, tile_rows=16)
        merged_engine.run_conmerge(tiled, x, w, np.zeros((rows, cols)))
        assert merged_engine.stats.cycles < dense_engine.stats.cycles

    def test_clock_gating_activity_tracked(self, rng):
        sdue = SDUEModel()
        mask = Bitmask.random(16, 16, sparsity=0.9, rng=rng)
        result = conmerge(mask)
        out = np.zeros((16, 16))
        for block in result.blocks:
            sdue.run_merged_block(
                block, rng.standard_normal((16, 8)),
                rng.standard_normal((8, 16)), out,
            )
        assert 0.0 < sdue.stats.utilization <= 1.0

    def test_rejects_block_larger_than_input(self, rng):
        from repro.core.conmerge.blocks import TileBlock

        sdue = SDUEModel()
        block = TileBlock(rows=16, width=16)
        with pytest.raises(ValueError, match="exceed"):
            sdue.run_merged_block(
                block, np.zeros((8, 4)), np.zeros((4, 16)), np.zeros((8, 16))
            )
