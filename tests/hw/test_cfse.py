"""Unit tests for the configurable SIMD engine model."""

import numpy as np
import pytest

from repro.hw.cfse import CFSEModel
from repro.models.activations import gelu, softmax


class TestThroughput:
    def test_two_way_doubles(self):
        assert CFSEModel(two_way_16bit=True).throughput_per_cycle == 32
        assert CFSEModel(two_way_16bit=False).throughput_per_cycle == 16

    def test_rejects_bad_lanes(self):
        with pytest.raises(ValueError):
            CFSEModel(lanes=0)


class TestFunctionalPaths:
    def test_softmax_matches(self, rng):
        cfse = CFSEModel()
        x = rng.standard_normal((4, 8))
        np.testing.assert_allclose(cfse.run_softmax(x), softmax(x))

    def test_gelu_matches(self, rng):
        cfse = CFSEModel()
        x = rng.standard_normal((4, 8))
        np.testing.assert_allclose(cfse.run_gelu(x), gelu(x))

    def test_layernorm_normalizes(self, rng):
        cfse = CFSEModel()
        out = cfse.run_layernorm(rng.standard_normal((4, 8)) * 3 + 1)
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-9)

    def test_residual_add(self, rng):
        cfse = CFSEModel()
        a = rng.standard_normal((4, 8))
        b = rng.standard_normal((4, 8))
        np.testing.assert_allclose(cfse.run_residual_add(a, b), a + b)


class TestCycleAccounting:
    def test_cycles_scale_with_elements(self):
        cfse = CFSEModel()
        small = cfse.function_cycles("softmax", 32)
        large = cfse.function_cycles("softmax", 3200)
        assert large == pytest.approx(100 * small, rel=0.05)

    def test_unknown_function_raises(self):
        with pytest.raises(KeyError):
            CFSEModel().function_cycles("fft", 100)

    def test_stats_accumulate(self, rng):
        cfse = CFSEModel()
        cfse.run_softmax(rng.standard_normal((4, 8)))
        cfse.run_gelu(rng.standard_normal((4, 8)))
        assert cfse.stats.elements == 64
        assert cfse.stats.cycles > 0
