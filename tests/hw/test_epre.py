"""Unit tests for the eager-prediction engine model."""

import numpy as np
import pytest

from repro.core.logdomain import log_domain_matmul
from repro.hw.epre import EPREModel, one_hot_or_add, shift_products


class TestOneHotAdder:
    def test_disjoint_or_equals_sum(self):
        values = [1, 4, 16]
        assert one_hot_or_add(values) == sum(values)

    def test_rejects_overlapping(self):
        with pytest.raises(ValueError, match="overlap"):
            one_hot_or_add([4, 4])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            one_hot_or_add([-1])

    def test_empty(self):
        assert one_hot_or_add([]) == 0


class TestShiftProducts:
    def test_quadrupled_operands(self):
        """TS-LOD yields up to 4 partial products per multiply (Fig. 15)."""
        products = shift_products(13, 5, max_terms=2)  # (8+4) x (4+1)
        assert len(products) == 4
        assert sum(products) == 12 * 5

    def test_lod_single_product(self):
        products = shift_products(13, 5, max_terms=1)
        assert products == [8 * 4]

    def test_all_products_one_hot(self):
        for p in shift_products(100, 77):
            assert p & (p - 1) == 0  # power of two


class TestEPREModel:
    def test_prediction_matches_logdomain_matmul(self, rng):
        epre = EPREModel(mode="ts_lod", bits=12)
        a = rng.standard_normal((8, 16))
        b = rng.standard_normal((16, 8))
        np.testing.assert_allclose(
            epre.predict_matmul(a, b),
            log_domain_matmul(a, b, "ts_lod", 12),
        )

    def test_cycles_accounted(self, rng):
        epre = EPREModel()
        epre.predict_matmul(rng.standard_normal((32, 32)),
                            rng.standard_normal((32, 32)))
        assert epre.stats.cycles == 2 * 2 * 2
        assert epre.stats.predictions == 1024

    def test_prediction_cycles_helper(self):
        epre = EPREModel()
        assert epre.prediction_cycles(16, 16, 16) == 1
        assert epre.prediction_cycles(17, 16, 16) == 2
