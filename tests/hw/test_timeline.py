"""Unit tests for per-iteration simulation timelines."""

import pytest

from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import estimate_profile
from repro.hw.timeline import simulate_timeline
from repro.workloads.specs import get_spec


@pytest.fixture(scope="module")
def dit_timeline():
    spec = get_spec("dit")
    return simulate_timeline(
        ExionAccelerator.exion24(),
        spec,
        profile=estimate_profile(spec, seed=0),
        iterations=12,
    )


class TestTimeline:
    def test_record_count(self, dit_timeline):
        assert len(dit_timeline.records) == 12

    def test_phase_cadence(self, dit_timeline):
        """Dense at 0, 3, 6, 9 for DiT's N=2 schedule."""
        dense_indices = [r.index for r in dit_timeline.dense_records()]
        assert dense_indices == [0, 3, 6, 9]

    def test_dense_iterations_slower(self, dit_timeline):
        """The FFN-Reuse signature: dense iterations take longer than
        sparse iterations at steady state."""
        assert dit_timeline.dense_sparse_latency_ratio > 1.1

    def test_first_iteration_longest(self, dit_timeline):
        """Iteration 0 pays the full weight fill from DRAM."""
        latencies = [r.latency_s for r in dit_timeline.records]
        assert latencies[0] == max(latencies)

    def test_total_matches_accelerator_simulate(self):
        spec = get_spec("dit")
        profile = estimate_profile(spec, seed=0)
        acc = ExionAccelerator.exion24()
        timeline = simulate_timeline(acc, spec, profile, iterations=12)
        report = acc.simulate(spec, profile, iterations=12)
        assert timeline.total_latency_s == pytest.approx(report.latency_s)

    def test_sparse_iterations_compute_fewer_macs(self, dit_timeline):
        dense = dit_timeline.dense_records()[0]
        sparse = dit_timeline.sparse_records()[0]
        assert sparse.macs_computed < dense.macs_computed

    def test_bound_labels(self, dit_timeline):
        for record in dit_timeline.records:
            assert record.bound in ("compute", "memory")

    def test_no_ffnr_all_dense(self):
        spec = get_spec("dit")
        timeline = simulate_timeline(
            ExionAccelerator.exion24(), spec,
            estimate_profile(spec, seed=0),
            enable_ffn_reuse=False, iterations=6,
        )
        assert len(timeline.sparse_records()) == 0
        assert timeline.dense_sparse_latency_ratio == 1.0
