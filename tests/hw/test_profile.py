"""Unit tests for sparsity profiles."""

import pytest

from repro.core.sparsity import RunStats
from repro.hw.profile import (
    SparsityProfile,
    estimate_profile,
    one_hot_rate_from_spec,
    profile_from_stats,
)
from repro.workloads.specs import get_spec


class TestOneHotRate:
    def test_consistent_decomposition(self):
        """one_hot + (1-one_hot)(1-k) must reproduce the target sparsity."""
        for name in ("mld", "dit", "edge"):
            spec = get_spec(name)
            rate = one_hot_rate_from_spec(spec)
            implied = rate + (1 - rate) * (1 - spec.top_k_ratio)
            assert implied >= spec.target_intra_sparsity - 0.01

    def test_bounded(self):
        for name in ("mld", "mdm", "stable_diffusion"):
            assert 0.0 <= one_hot_rate_from_spec(get_spec(name)) <= 1.0


class TestEstimateProfile:
    def test_fields_in_range(self):
        profile = estimate_profile(get_spec("stable_diffusion"), seed=0)
        assert 0.0 < profile.ffn_remaining_ratio <= 1.0
        assert profile.ffn_remaining_ratio <= profile.ffn_condense_ratio
        assert 0.0 < profile.ffn_utilization <= 1.0

    def test_merging_improves_on_condensing(self):
        profile = estimate_profile(get_spec("stable_diffusion"), seed=0)
        assert profile.ffn_remaining_ratio < profile.ffn_condense_ratio

    def test_validation_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SparsityProfile(
                name="x", dense_period=2,
                ffn_sparsity=1.5, ffn_condense_ratio=0.5,
                ffn_remaining_ratio=0.5, ffn_utilization=0.5,
                attn_sparsity=0.5, attn_condense_ratio=0.5,
                attn_remaining_ratio=0.5, attn_utilization=0.5,
                q_skip=0.2, kv_skip=0.2,
            )

    def test_deterministic_given_seed(self):
        a = estimate_profile(get_spec("dit"), seed=3)
        b = estimate_profile(get_spec("dit"), seed=3)
        assert a == b


class TestProfileFromStats:
    def test_measured_sparsities_override(self):
        stats = RunStats()
        stats.ffn_sparsities.append(0.77)
        stats.attention_sparsities.append(0.33)
        stats.q_projection.add(100, 80)
        stats.kv_projection.add(100, 90)
        profile = profile_from_stats(get_spec("dit"), stats)
        assert profile.ffn_sparsity == pytest.approx(0.77)
        assert profile.attn_sparsity == pytest.approx(0.33)
        assert profile.q_skip == pytest.approx(0.2)
        assert profile.kv_skip == pytest.approx(0.1)

    def test_empty_stats_fall_back_to_spec(self):
        profile = profile_from_stats(get_spec("dit"), RunStats())
        assert profile.ffn_sparsity == get_spec("dit").target_inter_sparsity
