"""Unit tests for workload mapping."""

import pytest

from repro.hw.mapping import (
    MMULWorkload,
    iteration_macs,
    iteration_workloads,
    transformer_block_workloads,
)
from repro.workloads.specs import get_spec


class TestMMULWorkload:
    def test_macs(self):
        load = MMULWorkload("x", "qkv", 4, 8, 16, count=2)
        assert load.macs == 4 * 8 * 16 * 2

    def test_weight_bytes_packed_int12(self):
        load = MMULWorkload("x", "qkv", 4, 8, 16)
        assert load.weight_bytes == int(8 * 16 * 1.5)

    def test_activation_matmuls_have_no_weights(self):
        load = MMULWorkload("attn_score", "attention", 4, 8, 4,
                            has_weights=False)
        assert load.weight_bytes == 0

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            MMULWorkload("x", "qkv", 0, 8, 16)


class TestBlockWorkloads:
    def test_self_attention_only(self):
        loads = transformer_block_workloads(get_spec("dit"))
        names = [load.name for load in loads]
        assert "q_proj" in names
        assert "ffn_linear1" in names
        assert not any(n.startswith("xattn") for n in names)

    def test_cross_attention_added(self):
        loads = transformer_block_workloads(get_spec("stable_diffusion"))
        names = [load.name for load in loads]
        assert "xattn_k_proj" in names
        assert "xattn_score" in names

    def test_geglu_doubles_ffn1_columns(self):
        sd = get_spec("stable_diffusion")
        loads = {load.name: load for load in transformer_block_workloads(sd)}
        assert loads["ffn_linear1"].c == 2 * 4 * sd.paper_dim

    def test_attention_score_per_head(self):
        dit = get_spec("dit")
        loads = {load.name: load for load in transformer_block_workloads(dit)}
        assert loads["attn_score"].count == dit.paper_heads
        assert loads["attn_score"].k == dit.paper_dim // dit.paper_heads


class TestIterationWorkloads:
    def test_depth_multiplies_counts(self):
        dit = get_spec("dit")
        loads = {load.name: load for load in iteration_workloads(dit)}
        assert loads["q_proj"].count == dit.paper_depth

    def test_etc_workload_matches_share(self):
        sd = get_spec("stable_diffusion")
        macs = iteration_macs(sd)
        transformer = macs["qkv"] + macs["attention"] + macs["ffn"]
        share = transformer / (transformer + macs["etc"])
        assert share == pytest.approx(sd.paper_transformer_share, abs=0.02)

    def test_pure_transformer_has_no_etc(self):
        macs = iteration_macs(get_spec("dit"))
        assert macs["etc"] == 0

    def test_ffn_dominates_transformer(self):
        """Fig. 4: FFN layers are the largest transformer category."""
        for name in ("dit", "mdm", "stable_diffusion"):
            macs = iteration_macs(get_spec(name))
            assert macs["ffn"] > macs["qkv"]
            assert macs["ffn"] > macs["attention"]
