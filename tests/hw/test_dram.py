"""Unit tests for the DRAM model."""

import pytest

from repro.hw.dram import DRAMModel, GDDR6, HBM2E, LPDDR5


class TestDRAMModel:
    def test_transfer_time_scales_with_bytes(self):
        dram = DRAMModel("test", bandwidth_gbps=100.0, energy_pj_per_bit=5.0)
        t1 = dram.transfer_seconds(1e9)
        t2 = dram.transfer_seconds(2e9)
        assert t2 > t1
        assert t2 - t1 == pytest.approx(0.01, rel=0.01)

    def test_zero_bytes_zero_time(self):
        assert LPDDR5.transfer_seconds(0) == 0.0

    def test_base_latency_floor(self):
        assert LPDDR5.transfer_seconds(1) >= LPDDR5.base_latency_ns * 1e-9

    def test_transfer_energy(self):
        dram = DRAMModel("test", bandwidth_gbps=100.0, energy_pj_per_bit=5.0)
        # 1 byte = 8 bits x 5 pJ = 40 pJ.
        assert dram.transfer_energy_j(1) == pytest.approx(40e-12)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            LPDDR5.transfer_seconds(-1)
        with pytest.raises(ValueError):
            LPDDR5.transfer_energy_j(-1)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            DRAMModel("bad", bandwidth_gbps=0.0, energy_pj_per_bit=1.0)

    def test_scaled_keeps_technology(self):
        scaled = GDDR6.scaled(1000.0)
        assert scaled.bandwidth_gbps == 1000.0
        assert scaled.energy_pj_per_bit == GDDR6.energy_pj_per_bit

    def test_paper_presets(self):
        """Table II bandwidths: EXION4 51 GB/s, EXION24 819 GB/s."""
        assert LPDDR5.bandwidth_gbps == 51.0
        assert GDDR6.bandwidth_gbps == 819.0
        assert HBM2E.bandwidth_gbps == 1935.0
