"""Unit tests for on-chip memory models."""

import pytest

from repro.hw.memory import DSCMemories, GSC_BYTES, SRAM


class TestSRAM:
    def test_capacity_checks(self):
        sram = SRAM("t", size_bytes=1024, banks=4)
        assert sram.fits(1024)
        assert not sram.fits(1025)
        assert sram.bank_bytes == 256

    def test_buffering_multiplies_physical_size(self):
        sram = SRAM("t", 1024, banks=4, buffering=3)
        assert sram.total_bytes == 3072

    def test_tiles_required(self):
        sram = SRAM("t", 1000, banks=1)
        assert sram.tiles_required(0) == 0
        assert sram.tiles_required(1000) == 1
        assert sram.tiles_required(1001) == 2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SRAM("t", 0, banks=1)
        with pytest.raises(ValueError):
            SRAM("t", 10, banks=1, buffering=4)
        with pytest.raises(ValueError):
            SRAM("t", 10, banks=1).tiles_required(-1)

    def test_access_counters(self):
        sram = SRAM("t", 1024, banks=4)
        sram.record_read(3)
        sram.record_write()
        assert sram.reads == 3
        assert sram.writes == 1


class TestDSCMemories:
    def test_paper_configuration(self):
        """Fig. 10/11: IMEM 24KB double-buffered, WMEM 192KB triple,
        OMEM 24KB, CVMEM 50KB, operand memories 96KB, INSTMEM 3KB."""
        mems = DSCMemories()
        assert mems.imem.size_bytes == 24 * 1024
        assert mems.imem.buffering == 2
        assert mems.wmem.size_bytes == 192 * 1024
        assert mems.wmem.buffering == 3
        assert mems.omem.size_bytes == 24 * 1024
        assert mems.cvmem.size_bytes == 50 * 1024
        assert mems.operand.size_bytes == 96 * 1024
        assert mems.instmem.size_bytes == 3 * 1024

    def test_bank_counts(self):
        mems = DSCMemories()
        assert mems.imem.banks == 16
        assert mems.wmem.banks == 16
        # 12 KB per WMEM bank as in Fig. 11.
        assert mems.wmem.bank_bytes == 12 * 1024

    def test_gsc_size(self):
        assert GSC_BYTES == 512 * 1024

    def test_total_bytes_counts_buffers(self):
        mems = DSCMemories()
        assert mems.total_bytes > sum(
            s.size_bytes for s in mems.all_srams()
        )
