"""Unit tests for the network-on-chip model."""

import pytest

from repro.hw.dram import GDDR6, LPDDR5
from repro.hw.noc import NoCConfig, exion_noc


class TestNoCConfig:
    def test_bandwidths(self):
        config = NoCConfig(num_dscs=4)
        assert config.link_bandwidth_gbps == pytest.approx(
            64 * 800e6 / 1e9
        )
        assert config.aggregate_bandwidth_gbps == pytest.approx(
            4 * 64 * 800e6 / 1e9
        )

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NoCConfig(num_dscs=0)


class TestTransfers:
    def test_broadcast_time(self):
        noc = exion_noc(24)
        seconds = noc.broadcast_seconds(64 * 100)
        assert seconds == pytest.approx(100 / 800e6)

    def test_unicast_parallel_across_links(self):
        noc = exion_noc(24)
        # Per-DSC payload time is independent of DSC count.
        assert noc.unicast_seconds(6400) == exion_noc(4).unicast_seconds(6400)

    def test_gather_symmetric_with_unicast(self):
        noc = exion_noc(8)
        assert noc.gather_seconds(1234) == noc.unicast_seconds(1234)

    def test_zero_bytes(self):
        assert exion_noc(4).broadcast_seconds(0) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            exion_noc(4).broadcast_seconds(-1)


class TestProvisioning:
    def test_exion_noc_does_not_throttle_dram(self):
        """The paper's NoC must sustain the DRAM stream: check both
        configurations against their memory systems."""
        assert not exion_noc(4).throttles_dram(LPDDR5.bandwidth_gbps)
        # GDDR6 at 819 GB/s exceeds one 51.2 GB/s link, but weights
        # stripe across DSC links in the EXION24 configuration:
        noc24 = exion_noc(24)
        per_link_share = GDDR6.bandwidth_gbps / 24
        assert noc24.config.link_bandwidth_gbps > per_link_share
