"""Unit tests for the DSC per-iteration cost model."""

import pytest

from repro.hw.dsc import DSCModel
from repro.hw.profile import estimate_profile
from repro.workloads.specs import get_spec


@pytest.fixture(scope="module")
def dit_setup():
    spec = get_spec("dit")
    return spec, estimate_profile(spec, seed=0), DSCModel()


class TestIterationCost:
    def test_base_dense_equals_computed(self, dit_setup):
        spec, profile, dsc = dit_setup
        cost = dsc.iteration_cost(spec, profile, False, False, False)
        assert cost.macs_computed == cost.macs_dense_equivalent
        assert cost.epre_cycles == 0
        assert cost.cau_cycles == 0

    def test_sparse_phase_reduces_ffn_cycles(self, dit_setup):
        spec, profile, dsc = dit_setup
        dense = dsc.iteration_cost(spec, profile, True, False, sparse_phase=False)
        sparse = dsc.iteration_cost(spec, profile, True, False, sparse_phase=True)
        assert sparse.sdue_cycles < dense.sdue_cycles
        assert sparse.per_kind_cycles["ffn1"] < dense.per_kind_cycles["ffn1"]
        assert sparse.per_kind_cycles["ffn2"] < dense.per_kind_cycles["ffn2"]

    def test_ep_reduces_attention_and_projection(self, dit_setup):
        spec, profile, dsc = dit_setup
        base = dsc.iteration_cost(spec, profile, False, False, False)
        ep = dsc.iteration_cost(spec, profile, False, True, False)
        assert ep.per_kind_cycles["attention"] < base.per_kind_cycles["attention"]
        assert ep.per_kind_cycles["qkv"] < base.per_kind_cycles["qkv"]
        assert ep.epre_cycles > 0  # prediction overhead is charged

    def test_dense_phase_runs_cau(self, dit_setup):
        spec, profile, dsc = dit_setup
        dense = dsc.iteration_cost(spec, profile, True, False, sparse_phase=False)
        assert dense.cau_cycles > 0

    def test_sparse_phase_cuts_weight_traffic(self, dit_setup):
        spec, profile, dsc = dit_setup
        dense = dsc.iteration_cost(spec, profile, True, False, sparse_phase=False)
        sparse = dsc.iteration_cost(spec, profile, True, False, sparse_phase=True)
        assert sparse.weight_bytes < dense.weight_bytes

    def test_batch_scales_activations_not_weights(self, dit_setup):
        spec, profile, dsc = dit_setup
        b1 = dsc.iteration_cost(spec, profile, False, False, False, batch=1)
        b8 = dsc.iteration_cost(spec, profile, False, False, False, batch=8)
        assert b8.weight_bytes == b1.weight_bytes
        assert b8.activation_bytes == 8 * b1.activation_bytes
        assert b8.macs_dense_equivalent == 8 * b1.macs_dense_equivalent

    def test_rejects_bad_batch(self, dit_setup):
        spec, profile, dsc = dit_setup
        with pytest.raises(ValueError):
            dsc.iteration_cost(spec, profile, False, False, False, batch=0)

    def test_activity_below_one_with_sparsity(self, dit_setup):
        spec, profile, dsc = dit_setup
        sparse = dsc.iteration_cost(spec, profile, True, True, sparse_phase=True)
        assert sparse.sdue_activity < 1.0

    def test_etc_workload_never_optimized(self):
        """ResBlock/etc work runs dense in every configuration (the paper
        applies no sparsity optimization there, Section V-C)."""
        spec = get_spec("stable_diffusion")
        profile = estimate_profile(spec, seed=0)
        dsc = DSCModel()
        base = dsc.iteration_cost(spec, profile, False, False, False)
        full = dsc.iteration_cost(spec, profile, True, True, sparse_phase=True)
        assert full.per_kind_cycles["etc"] == base.per_kind_cycles["etc"]
