"""Unit tests for the top-controller program builder."""

import pytest

from repro.hw.controller import Instruction, Opcode, ProgramBuilder
from repro.workloads.specs import BENCHMARK_ORDER, get_spec


class TestProgramBuilder:
    @pytest.mark.parametrize("name", BENCHMARK_ORDER)
    def test_program_fits_instmem(self, name):
        """Every model's per-iteration program fits the 3 KB INSTMEM."""
        builder = ProgramBuilder(get_spec(name))
        assert builder.program_bytes(False) <= 3 * 1024
        assert builder.program_bytes(True) <= 3 * 1024

    def test_dense_phase_runs_cau(self):
        program = ProgramBuilder(get_spec("dit")).build_iteration(False)
        assert any(i.opcode is Opcode.RUN_CAU for i in program)

    def test_sparse_phase_uses_merged_sdue(self):
        program = ProgramBuilder(get_spec("dit")).build_iteration(True)
        assert any(i.opcode is Opcode.RUN_SDUE_MERGED for i in program)
        assert not any(i.opcode is Opcode.RUN_CAU for i in program)

    def test_every_workload_loads_inputs_and_stores(self):
        from repro.hw.mapping import iteration_workloads

        spec = get_spec("mdm")
        program = ProgramBuilder(spec).build_iteration(False)
        loads = sum(1 for i in program if i.opcode is Opcode.LOAD_INPUT)
        stores = sum(1 for i in program if i.opcode is Opcode.STORE_OUTPUT)
        n_workloads = len(iteration_workloads(spec))
        assert loads == n_workloads
        assert stores == n_workloads

    def test_weightless_mmuls_skip_weight_load(self):
        spec = get_spec("dit")
        program = ProgramBuilder(spec).build_iteration(False)
        weight_loads = sum(
            1 for i in program if i.opcode is Opcode.LOAD_WEIGHT
        )
        input_loads = sum(1 for i in program if i.opcode is Opcode.LOAD_INPUT)
        assert weight_loads < input_loads  # attn_score / attn_av skip it

    def test_program_ends_with_sync(self):
        program = ProgramBuilder(get_spec("mld")).build_iteration(True)
        assert program[-1].opcode is Opcode.SYNC

    def test_instruction_encoding_size(self):
        assert Instruction.ENCODED_BYTES == 12
