"""Unit tests for the multi-DSC accelerator simulation."""

import pytest

from repro.hw.accelerator import ExionAccelerator
from repro.hw.profile import estimate_profile
from repro.workloads.specs import get_spec


@pytest.fixture(scope="module")
def dit_profile():
    return estimate_profile(get_spec("dit"), seed=0)


class TestConfigurations:
    def test_table2_instances(self):
        ex4 = ExionAccelerator.exion4()
        assert ex4.num_dscs == 4
        assert ex4.peak_tops == pytest.approx(39.2)
        assert ex4.dram.bandwidth_gbps == 51.0
        ex24 = ExionAccelerator.exion24()
        assert ex24.peak_tops == pytest.approx(235.2)
        assert ex24.dram.bandwidth_gbps == 819.0

    def test_peak_power_scales(self):
        assert ExionAccelerator.exion4().peak_power_w == pytest.approx(
            4 * 1.51143, abs=0.01
        )

    def test_rejects_zero_dscs(self):
        from repro.hw.dram import GDDR6

        with pytest.raises(ValueError):
            ExionAccelerator(0, GDDR6)


class TestCustomConfigurations:
    def test_factories_are_custom_points(self):
        """The Table II factories stay byte-identical to the generalized
        constructor at the same coordinates."""
        ex24 = ExionAccelerator.exion24()
        custom = ExionAccelerator.custom(
            num_dscs=24, dram="gddr6", gsc_mb=64.0, name="EXION24",
        )
        assert custom.num_dscs == ex24.num_dscs
        assert custom.dram == ex24.dram
        assert custom.gsc_bytes == ex24.gsc_bytes
        assert custom.clock_hz == ex24.clock_hz
        assert custom.name == ex24.name

    def test_custom_simulation_matches_factory(self, dit_profile):
        spec = get_spec("dit")
        factory = ExionAccelerator.exion4().simulate(spec, dit_profile)
        custom = ExionAccelerator.custom(
            num_dscs=4, dram="lpddr5", name="EXION4",
        ).simulate(spec, dit_profile)
        assert custom == factory

    def test_bandwidth_override_scales_technology(self):
        acc = ExionAccelerator.custom(8, dram="lpddr5",
                                      bandwidth_gbps=102.0)
        assert acc.dram.bandwidth_gbps == 102.0
        assert acc.dram.name == "LPDDR5"  # energy/latency kept

    def test_gsc_mb_is_total_capacity(self):
        acc = ExionAccelerator.custom(8, gsc_mb=32.0)
        assert acc.gsc_bytes == int(32.0 * 1024 * 1024 / 8) * 8

    def test_clear_errors_for_bad_knobs(self):
        with pytest.raises(ValueError, match="num_dscs"):
            ExionAccelerator.custom(0)
        with pytest.raises(ValueError, match="positive integer"):
            ExionAccelerator.custom(2.5)
        with pytest.raises(ValueError, match="bandwidth_gbps"):
            ExionAccelerator.custom(4, bandwidth_gbps=-1.0)
        with pytest.raises(ValueError, match="bandwidth_gbps"):
            ExionAccelerator.custom(4, bandwidth_gbps=0.0)
        with pytest.raises(ValueError, match="gsc_mb"):
            ExionAccelerator.custom(4, gsc_mb=-2.0)
        with pytest.raises(ValueError, match="unknown DRAM technology"):
            ExionAccelerator.custom(4, dram="ddr3")
        with pytest.raises(ValueError, match="clock_hz"):
            ExionAccelerator.custom(4, clock_hz=0.0)

    def test_default_name_marks_custom(self):
        assert ExionAccelerator.custom(7).name == "EXION7c"


class TestSimulation:
    def test_report_fields(self, dit_profile):
        report = ExionAccelerator.exion24().simulate(
            get_spec("dit"), profile=dit_profile
        )
        assert report.latency_s > 0
        assert report.energy_j > 0
        assert report.effective_tops > 0
        assert report.tops_per_watt > 0
        assert 0 <= report.compute_bound_fraction <= 1
        assert set(report.energy_breakdown_j) >= {"sdue", "epre", "dram"}

    def test_ablation_ordering(self, dit_profile):
        """Base <= EP <= All and Base <= FFNR <= All in efficiency
        (paper Fig. 18 ablation bars)."""
        spec = get_spec("dit")
        acc = ExionAccelerator.exion24()
        base = acc.simulate(spec, dit_profile, False, False)
        ep = acc.simulate(spec, dit_profile, False, True)
        ffnr = acc.simulate(spec, dit_profile, True, False)
        full = acc.simulate(spec, dit_profile, True, True)
        assert base.tops_per_watt <= ep.tops_per_watt <= full.tops_per_watt
        assert base.tops_per_watt <= ffnr.tops_per_watt <= full.tops_per_watt
        assert full.latency_s <= base.latency_s

    def test_ffnr_dominates_ep_for_dit(self, dit_profile):
        """FFN layers dominate diffusion compute, so FFN-Reuse buys more
        than EP alone (paper: 'optimizing the FFN layers is crucial')."""
        spec = get_spec("dit")
        acc = ExionAccelerator.exion24()
        ep = acc.simulate(spec, dit_profile, False, True)
        ffnr = acc.simulate(spec, dit_profile, True, False)
        assert ffnr.tops_per_watt > ep.tops_per_watt

    def test_ops_reduction_reported(self, dit_profile):
        report = ExionAccelerator.exion24().simulate(
            get_spec("dit"), dit_profile, True, True
        )
        assert 0.3 < report.ops_reduction < 0.95

    def test_more_dscs_lower_latency(self, dit_profile):
        spec = get_spec("dit")
        r4 = ExionAccelerator.exion4().simulate(spec, dit_profile)
        r24 = ExionAccelerator.exion24().simulate(spec, dit_profile)
        assert r24.latency_s < r4.latency_s

    def test_batch8_increases_latency_but_throughput(self, dit_profile):
        spec = get_spec("dit")
        acc = ExionAccelerator.exion24()
        b1 = acc.simulate(spec, dit_profile, batch=1)
        b8 = acc.simulate(spec, dit_profile, batch=8)
        assert b8.latency_s > b1.latency_s
        assert b8.latency_s < 8 * b1.latency_s  # batching amortizes

    def test_iteration_override(self, dit_profile):
        spec = get_spec("dit")
        acc = ExionAccelerator.exion24()
        short = acc.simulate(spec, dit_profile, iterations=10)
        full = acc.simulate(spec, dit_profile, iterations=100)
        assert short.latency_s < full.latency_s
        assert short.iterations == 10

    def test_small_model_fits_gsc_and_is_fast(self):
        """MLD's INT12 weights fit the GSC, so steady-state iterations see
        no weight traffic and the run is compute-bound."""
        spec = get_spec("mld")
        acc = ExionAccelerator.exion4()
        report = acc.simulate(spec)
        assert report.latency_s < 0.01  # well under 10 ms total
