"""Unit tests for the banked DRAM timing model."""

import pytest

from repro.hw.dram_detail import (
    BankedDRAM,
    DRAMTimings,
    GDDR6_TIMINGS,
    LPDDR5_TIMINGS,
    validate_stream_assumption,
)


class TestTimings:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            DRAMTimings("x", banks=0, row_bytes=2048, burst_bytes=64,
                        io_gbps=50, t_rcd_ns=18, t_rp_ns=18, t_cl_ns=17)
        with pytest.raises(ValueError):
            DRAMTimings("x", banks=8, row_bytes=32, burst_bytes=64,
                        io_gbps=50, t_rcd_ns=18, t_rp_ns=18, t_cl_ns=17)

    def test_burst_transfer_time(self):
        assert LPDDR5_TIMINGS.burst_transfer_ns == pytest.approx(64 / 51.0)


class TestBankedAccess:
    def test_first_access_misses(self):
        dram = BankedDRAM(LPDDR5_TIMINGS)
        dram.access_burst(0)
        assert dram.stats.row_misses == 1
        assert dram.stats.row_hits == 0

    def test_same_row_hits(self):
        dram = BankedDRAM(LPDDR5_TIMINGS)
        dram.access_burst(0)
        # Same bank, same row: stride banks * burst.
        stride = LPDDR5_TIMINGS.banks * LPDDR5_TIMINGS.burst_bytes
        dram.access_burst(stride)
        assert dram.stats.row_hits == 1

    def test_row_conflict_pays_precharge(self):
        dram = BankedDRAM(LPDDR5_TIMINGS)
        t = LPDDR5_TIMINGS
        first = dram.access_burst(0)
        # Same bank, different row.
        far = t.banks * t.row_bytes * 4
        second = dram.access_burst(far)
        assert second > first  # extra precharge

    def test_hit_faster_than_miss(self):
        dram = BankedDRAM(LPDDR5_TIMINGS)
        miss = dram.access_burst(0)
        stride = LPDDR5_TIMINGS.banks * LPDDR5_TIMINGS.burst_bytes
        hit = dram.access_burst(stride)
        assert hit < miss

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            BankedDRAM(LPDDR5_TIMINGS).access_burst(-1)


class TestStream:
    def test_sequential_hit_rate_high(self):
        dram = BankedDRAM(GDDR6_TIMINGS)
        dram.stream(1024 * 1024)
        assert dram.stats.hit_rate > 0.9

    def test_stream_near_peak_bandwidth(self):
        """The assumption behind the stream-level DRAM model: sequential
        bursts achieve >90% of the interface rate."""
        for timings in (LPDDR5_TIMINGS, GDDR6_TIMINGS):
            result = validate_stream_assumption(timings, megabytes=2)
            assert result["sequential_fraction_of_peak"] > 0.9, timings.name

    def test_random_far_below_sequential(self):
        result = validate_stream_assumption(LPDDR5_TIMINGS, megabytes=2)
        assert result["random_gbps"] < 0.5 * result["sequential_gbps"]

    def test_stream_time_scales_linearly(self):
        dram = BankedDRAM(GDDR6_TIMINGS)
        t1 = dram.stream(1024 * 1024)
        dram2 = BankedDRAM(GDDR6_TIMINGS)
        t2 = dram2.stream(2 * 1024 * 1024)
        assert t2 == pytest.approx(2 * t1, rel=0.05)
