"""Unit tests for the dot-product unit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.dpu import DPU, LANE_LENGTH, dot_product_cycles, wallace_tree_sum


class TestWallaceTree:
    def test_matches_sum(self, rng):
        values = rng.integers(-100, 100, size=13)
        assert wallace_tree_sum(values) == int(values.sum())

    def test_empty(self):
        assert wallace_tree_sum(np.array([], dtype=int)) == 0

    @given(st.lists(st.integers(-(2**20), 2**20), max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_property_equals_sum(self, values):
        assert wallace_tree_sum(np.array(values, dtype=np.int64)) == sum(values)


class TestDPU:
    def test_accumulates_dot_product(self, rng):
        dpu = DPU()
        a = rng.integers(-10, 10, size=16)
        b = rng.integers(-10, 10, size=16)
        dpu.step(a, b)
        assert dpu.accumulator == int(a @ b)

    def test_multi_cycle_accumulation(self, rng):
        dpu = DPU()
        a = rng.integers(-10, 10, size=48)
        b = rng.integers(-10, 10, size=48)
        for i in range(0, 48, 16):
            dpu.step(a[i : i + 16], b[i : i + 16])
        assert dpu.accumulator == int(a @ b)
        assert dpu.mac_count == 48

    def test_reset(self):
        dpu = DPU()
        dpu.step(np.ones(4, dtype=int), np.ones(4, dtype=int))
        dpu.reset()
        assert dpu.accumulator == 0

    def test_rejects_oversized_slice(self):
        dpu = DPU()
        with pytest.raises(ValueError, match="at most"):
            dpu.step(np.ones(17, dtype=int), np.ones(17, dtype=int))

    def test_rejects_mismatched_slices(self):
        with pytest.raises(ValueError):
            DPU().step(np.ones(4, dtype=int), np.ones(5, dtype=int))


class TestCycles:
    def test_exact_multiple(self):
        assert dot_product_cycles(32) == 2

    def test_rounds_up(self):
        assert dot_product_cycles(33) == 3

    def test_zero(self):
        assert dot_product_cycles(0) == 0

    def test_lane_length_constant(self):
        assert LANE_LENGTH == 16
