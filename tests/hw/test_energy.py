"""Unit tests for the Table III energy/area model."""

import pytest

from repro.hw.energy import (
    DSC_POWER_MW,
    EnergyModel,
    TOTAL_DSC_AREA_MM2,
    TOTAL_DSC_POWER_MW,
)


class TestTableIII:
    def test_total_area(self):
        assert TOTAL_DSC_AREA_MM2 == pytest.approx(4.37, abs=0.01)

    def test_total_power(self):
        assert TOTAL_DSC_POWER_MW == pytest.approx(1511.43, abs=0.1)

    def test_sdue_dominates_power(self):
        assert DSC_POWER_MW["sdue"] == max(DSC_POWER_MW.values())

    def test_sparsity_units_power_share(self):
        """EPRE + CAU consume up to ~18.6% of total power (paper V-D)."""
        share = (DSC_POWER_MW["epre"] + DSC_POWER_MW["cau"]) / sum(
            DSC_POWER_MW.values()
        )
        assert share == pytest.approx(0.186, abs=0.01)


class TestEnergyModel:
    def test_busy_energy(self):
        model = EnergyModel()
        model.record("sdue", busy_cycles=800_000_000)  # one second busy
        # One second at full activity -> the component's power in joules.
        assert model.component_energy_j("sdue") == pytest.approx(
            0.958, abs=0.01
        )

    def test_idle_energy_gated(self):
        model = EnergyModel()
        model.record("sdue", busy_cycles=0, idle_cycles=800_000_000)
        assert model.component_energy_j("sdue") == pytest.approx(
            0.958 * model.idle_fraction, rel=0.01
        )

    def test_activity_scales_busy_energy(self):
        half = EnergyModel()
        half.record("sdue", busy_cycles=1000, activity=0.5)
        full = EnergyModel()
        full.record("sdue", busy_cycles=1000, activity=1.0)
        assert half.component_energy_j("sdue") == pytest.approx(
            0.5 * full.component_energy_j("sdue")
        )

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            EnergyModel().record("gpu", 10)

    def test_rejects_negative_cycles(self):
        with pytest.raises(ValueError):
            EnergyModel().record("sdue", -1)

    def test_dram_energy_included_in_total(self):
        model = EnergyModel()
        model.add_dram_energy(0.5)
        assert model.total_energy_j() == pytest.approx(0.5)
        assert model.breakdown_j()["dram"] == 0.5

    def test_rejects_negative_dram_energy(self):
        with pytest.raises(ValueError):
            EnergyModel().add_dram_energy(-0.1)

    def test_activity_weighted_across_records(self):
        model = EnergyModel()
        model.record("cfse", 1000, activity=1.0)
        model.record("cfse", 1000, activity=0.0)
        entry = model._activities["cfse"]
        assert entry.activity == pytest.approx(0.5)
