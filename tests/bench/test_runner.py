"""Runner tests: execution, timing, validation, and JSON output."""

import json

import pytest

from repro.bench import BenchContext, BenchmarkRegistry, BenchResult
from repro.bench.runner import (
    AGGREGATE_FILENAME,
    bench_filename,
    run_benches,
)
from repro.bench.schema import validate_aggregate, validate_result


def toy_registry():
    registry = BenchmarkRegistry()

    def build_fast(ctx):
        result = BenchResult("fast")
        result.add_metric("value", 1.0)
        result.add_series("t", ["h"], [["r"]])
        return result

    def build_other(ctx):
        result = BenchResult("other")
        result.add_metric("value", 2.0)
        return result

    registry.register("fast", build_fast, tags=("smoke",))
    registry.register("other", build_other)
    return registry


class TestRunBenches:
    def test_runs_selection_and_times(self, tmp_path):
        results = run_benches("all", out_dir=tmp_path,
                              registry=toy_registry(), ctx=BenchContext())
        assert set(results) == {"fast", "other"}
        for result in results.values():
            assert result.timing["wall_s"] >= 0.0
            assert result.env["python"]
            validate_result(result.to_dict())

    def test_tag_selection(self, tmp_path):
        results = run_benches("tag:smoke", out_dir=tmp_path,
                              registry=toy_registry())
        assert set(results) == {"fast"}

    def test_writes_per_bench_and_aggregate_json(self, tmp_path):
        run_benches("all", out_dir=tmp_path, registry=toy_registry())
        for name in ("fast", "other"):
            data = json.loads((tmp_path / bench_filename(name)).read_text())
            validate_result(data)
            assert data["name"] == name
        aggregate = json.loads((tmp_path / AGGREGATE_FILENAME).read_text())
        validate_aggregate(aggregate)
        assert set(aggregate["results"]) == {"fast", "other"}

    def test_no_write_without_out_dir(self, tmp_path):
        results = run_benches("fast", registry=toy_registry())
        assert list(tmp_path.iterdir()) == []
        assert set(results) == {"fast"}

    def test_builder_returning_wrong_type_rejected(self):
        registry = BenchmarkRegistry()
        registry.register("broken", lambda ctx: {"not": "a result"})
        with pytest.raises(TypeError):
            run_benches("broken", registry=registry)

    def test_progress_callback(self):
        lines = []
        run_benches("fast", registry=toy_registry(), progress=lines.append)
        assert any("fast" in line for line in lines)
