"""Regression-gate tests: bench_compare catches what it must, only that."""

import copy
import json

import pytest

from repro.bench import BenchResult, compare_results, load_results
from repro.bench.compare import format_report
from repro.bench.runner import write_results


def result_set():
    result = BenchResult("gate_bench", model="dit")
    result.add_metric("speedup", 2.5, unit="x", direction="higher_better",
                      tolerance=0.10)
    result.add_metric("error", 0.02, direction="lower_better",
                      tolerance=0.10)
    result.add_metric("paper_constant", 39.2, direction="two_sided",
                      tolerance=0.01)
    # Heavy enough that relative drift also clears the absolute
    # latency slack floor (DEFAULT_LATENCY_MIN_ABS_S).
    result.timing["wall_s"] = 10.0
    return {"gate_bench": result.to_dict()}


class TestCompare:
    def test_identical_rerun_passes(self):
        baseline = result_set()
        report = compare_results(baseline, copy.deepcopy(baseline))
        assert report.ok
        assert report.exit_code() == 0
        assert "no differences" in format_report(report)

    def test_injected_latency_regression_fails(self):
        baseline = result_set()
        current = copy.deepcopy(baseline)
        current["gate_bench"]["timing"]["wall_s"] *= 1.20  # +20% > 10% tol
        report = compare_results(baseline, current)
        assert not report.ok
        assert report.exit_code() == 1
        assert report.regressions[0].kind == "latency"

    def test_latency_within_tolerance_passes(self):
        baseline = result_set()
        current = copy.deepcopy(baseline)
        current["gate_bench"]["timing"]["wall_s"] *= 1.05
        assert compare_results(baseline, current).ok

    def test_latency_improvement_not_a_regression(self):
        baseline = result_set()
        current = copy.deepcopy(baseline)
        current["gate_bench"]["timing"]["wall_s"] *= 0.5
        report = compare_results(baseline, current)
        assert report.ok
        assert report.improvements

    def test_millisecond_jitter_filtered_by_abs_floor(self):
        # A 50% swing on a 20ms bench is noise, not a regression.
        baseline = result_set()
        baseline["gate_bench"]["timing"]["wall_s"] = 0.020
        current = copy.deepcopy(baseline)
        current["gate_bench"]["timing"]["wall_s"] = 0.030
        assert compare_results(baseline, current).ok
        # ... unless the caller disables the floor.
        report = compare_results(baseline, current, latency_min_abs_s=0.0)
        assert not report.ok

    def test_higher_better_drop_fails(self):
        baseline = result_set()
        current = copy.deepcopy(baseline)
        current["gate_bench"]["metrics"]["speedup"]["value"] = 2.0  # -20%
        report = compare_results(baseline, current)
        assert not report.ok
        assert "speedup" in report.regressions[0].message

    def test_lower_better_rise_fails(self):
        baseline = result_set()
        current = copy.deepcopy(baseline)
        current["gate_bench"]["metrics"]["error"]["value"] = 0.03
        assert not compare_results(baseline, current).ok

    def test_two_sided_drift_fails_both_ways(self):
        for factor in (0.9, 1.1):
            baseline = result_set()
            current = copy.deepcopy(baseline)
            current["gate_bench"]["metrics"]["paper_constant"]["value"] = (
                39.2 * factor
            )
            assert not compare_results(baseline, current).ok

    def test_improvement_direction_not_flagged(self):
        baseline = result_set()
        current = copy.deepcopy(baseline)
        current["gate_bench"]["metrics"]["speedup"]["value"] = 5.0
        report = compare_results(baseline, current)
        assert report.ok
        assert report.improvements

    def test_missing_bench_is_note_unless_strict(self):
        baseline = result_set()
        report = compare_results(baseline, {})
        assert report.ok
        assert report.notes
        strict = compare_results(baseline, {}, strict=True)
        assert not strict.ok

    def test_missing_metric_is_note_unless_strict(self):
        baseline = result_set()
        current = copy.deepcopy(baseline)
        del current["gate_bench"]["metrics"]["error"]
        assert compare_results(baseline, current).ok
        assert not compare_results(baseline, current, strict=True).ok

    def test_new_bench_is_note(self):
        baseline = result_set()
        current = copy.deepcopy(baseline)
        current["extra_bench"] = copy.deepcopy(baseline["gate_bench"])
        current["extra_bench"]["name"] = "extra_bench"
        report = compare_results(baseline, current)
        assert report.ok
        assert any(f.bench == "extra_bench" for f in report.notes)


class TestLoadResults:
    def test_load_aggregate_file_and_directory(self, tmp_path):
        result = BenchResult.from_dict(result_set()["gate_bench"])
        write_results({"gate_bench": result}, tmp_path)

        from_file = load_results(tmp_path / "BENCH_repro.json")
        from_dir = load_results(tmp_path)
        assert set(from_file) == {"gate_bench"}
        assert from_file == from_dir

    def test_load_single_result_file(self, tmp_path):
        path = tmp_path / "BENCH_gate_bench.json"
        path.write_text(json.dumps(result_set()["gate_bench"]))
        loaded = load_results(path)
        assert set(loaded) == {"gate_bench"}

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "BENCH_junk.json"
        path.write_text(json.dumps({"neither": 1}))
        with pytest.raises(ValueError):
            load_results(path)

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_results(tmp_path)
