"""Schema round-trip and validation tests for repro.bench."""

import json

import pytest

from repro.bench import BenchResult, Metric, SchemaError, validate_result
from repro.bench.schema import _fallback_validate, BENCH_RESULT_SCHEMA


def sample_result():
    result = BenchResult("unit_bench", model="dit", tags=("unit",))
    result.add_metric("speedup", 2.5, unit="x", paper=3.0,
                      direction="higher_better", tolerance=0.1)
    result.add_metric("latency_ms", 12.0, unit="ms",
                      direction="lower_better")
    result.add_series("A table", ["col a", "col b"],
                      [["x", 1], ["y", 2]])
    result.add_note("a trailing remark")
    result.timing["wall_s"] = 0.25
    result.env = {"python": "3.11"}
    return result


class TestBenchResult:
    def test_round_trip(self):
        original = sample_result()
        data = original.to_dict()
        validate_result(data)
        # JSON-serializable without tricks (allow_nan off).
        restored = BenchResult.from_dict(
            json.loads(json.dumps(data, allow_nan=False))
        )
        assert restored.to_dict() == data
        assert restored.metric("speedup").paper == 3.0
        assert restored.value("latency_ms") == 12.0

    def test_render_contains_tables_and_notes(self):
        result = sample_result()
        blocks = result.render_blocks()
        assert len(blocks) == 2  # one table + one note
        assert "A table" in blocks[0]
        assert "col a" in blocks[0]
        assert blocks[1] == "a trailing remark"
        assert "a trailing remark" in result.render()

    def test_non_finite_metric_rejected(self):
        result = BenchResult("unit_bench")
        with pytest.raises(ValueError):
            result.add_metric("bad", float("inf"))
        with pytest.raises(ValueError):
            result.add_metric("bad", float("nan"))

    def test_duplicate_metric_rejected(self):
        result = BenchResult("unit_bench")
        result.add_metric("m", 1.0)
        with pytest.raises(ValueError):
            result.add_metric("m", 2.0)

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError):
            Metric(value=1.0, direction="sideways")


class TestValidation:
    def test_missing_key_fails(self):
        data = sample_result().to_dict()
        del data["metrics"]
        with pytest.raises(SchemaError):
            validate_result(data)

    def test_unexpected_key_fails(self):
        data = sample_result().to_dict()
        data["surprise"] = 1
        with pytest.raises(SchemaError):
            validate_result(data)

    def test_bad_metric_type_fails(self):
        data = sample_result().to_dict()
        data["metrics"]["speedup"]["value"] = "fast"
        with pytest.raises(SchemaError):
            validate_result(data)

    def test_bad_direction_enum_fails(self):
        data = sample_result().to_dict()
        data["metrics"]["speedup"]["direction"] = "sideways"
        with pytest.raises(SchemaError):
            validate_result(data)

    def test_fallback_validator_agrees(self):
        # The dependency-free interpreter enforces the same document.
        good = sample_result().to_dict()
        _fallback_validate(good, BENCH_RESULT_SCHEMA)
        bad = sample_result().to_dict()
        bad["timing"] = {"wall_s": -1.0}
        with pytest.raises(SchemaError):
            _fallback_validate(bad, BENCH_RESULT_SCHEMA)
