"""Registry registration, lookup, selection, and discovery tests."""

import pytest

from repro.bench import BenchContext, BenchmarkRegistry, BenchResult
from repro.bench.runner import discover, find_benchmarks_dir


def make_registry():
    registry = BenchmarkRegistry()

    def build_a(ctx):
        return BenchResult("a")

    def build_b(ctx):
        return BenchResult("b")

    registry.register("a", build_a, tags=("fast", "core"))
    registry.register("b", build_b, tags=("slow",))
    return registry


class TestRegistry:
    def test_register_and_get(self):
        registry = make_registry()
        assert registry.names() == ["a", "b"]
        assert registry.get("a").tags == ("fast", "core")
        assert "a" in registry
        assert len(registry) == 2

    def test_duplicate_rejected_unless_replace(self):
        registry = make_registry()
        with pytest.raises(ValueError):
            registry.register("a", lambda ctx: BenchResult("a"))
        registry.register("a", lambda ctx: BenchResult("a"), replace=True)
        assert len(registry) == 2

    def test_unknown_name(self):
        registry = make_registry()
        with pytest.raises(KeyError):
            registry.get("nope")
        with pytest.raises(KeyError):
            registry.select("nope")

    def test_select_all(self):
        registry = make_registry()
        assert [e.name for e in registry.select("all")] == ["a", "b"]

    def test_select_by_tag(self):
        registry = make_registry()
        assert [e.name for e in registry.select("tag:fast")] == ["a"]
        with pytest.raises(KeyError):
            registry.select("tag:imaginary")

    def test_select_union(self):
        registry = make_registry()
        assert [e.name for e in registry.select("b,tag:fast")] == ["a", "b"]


class TestDiscovery:
    def test_discover_populates_global_registry(self):
        registry = discover()
        # Every paper figure/table panel registers exactly one bench.
        assert len(registry) >= 20
        for name in ("fig06_ffn_reuse", "table1_accuracy",
                     "serve_throughput", "ablation_n_sweep"):
            assert name in registry
        # Discovery is idempotent (modules may already be imported).
        assert len(discover()) == len(registry)

    def test_find_benchmarks_dir(self):
        assert (find_benchmarks_dir() / "conftest.py").is_file()

    def test_registered_builder_runs(self):
        registry = discover()
        entry = registry.get("table2_specs")
        result = entry.builder(BenchContext())
        assert isinstance(result, BenchResult)
        assert result.value("exion4.peak_tops") == pytest.approx(39.2)
