"""Prometheus exposition is lossless: parse it back, rebuild every
sample, and compare against the registry's own state — including the
label-escaping and histogram-bucket edge cases exposition formats get
wrong most often."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry
from repro.obs.metrics import (
    escape_label_value,
    histogram_quantile,
    parse_prometheus,
    unescape_label_value,
)


def _fixture_registry():
    reg = MetricsRegistry()
    c = reg.counter("hits_total", help_="total hits", labels=("path",))
    c.inc(3, path="/a")
    c.inc(path='/quo"ted')
    c.inc(path="back\\slash")
    c.inc(path="new\nline")
    g = reg.gauge("depth", labels=("queue",))
    g.set(4.5, queue="main")
    h = reg.histogram("lat", labels=("op",), buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        h.observe(value, op="serve")
    reg.counter("plain_total").inc(7)
    return reg


class TestRoundTrip:
    def test_every_sample_reconstructs(self):
        reg = _fixture_registry()
        parsed = parse_prometheus(reg.to_prometheus())

        assert parsed["hits_total"]["type"] == "counter"
        samples = dict(
            (labels["path"], value)
            for labels, value in parsed["hits_total"]["samples"]
        )
        assert samples == {
            "/a": 3.0, '/quo"ted': 1.0, "back\\slash": 1.0,
            "new\nline": 1.0,
        }

        assert parsed["depth"]["samples"] == [({"queue": "main"}, 4.5)]
        assert parsed["plain_total"]["samples"] == [({}, 7.0)]

    def test_histogram_buckets_cumulative_and_complete(self):
        reg = _fixture_registry()
        parsed = parse_prometheus(reg.to_prometheus())

        buckets = {
            labels["le"]: value
            for labels, value in parsed["lat_bucket"]["samples"]
        }
        # Cumulative counts per le bound, +Inf covering everything.
        assert buckets == {"0.1": 1.0, "1": 2.0, "10": 3.0, "+Inf": 4.0}
        assert parsed["lat_sum"]["samples"][0][1] == pytest.approx(55.55)
        assert parsed["lat_count"]["samples"][0][1] == 4.0
        # Suffixed series resolve back to the histogram's declared type.
        assert parsed["lat_bucket"]["type"] == "histogram"

    def test_round_trip_rebuilds_equivalent_registry(self):
        reg = _fixture_registry()
        parsed = parse_prometheus(reg.to_prometheus())

        rebuilt = MetricsRegistry()
        counter = rebuilt.counter("hits_total", labels=("path",))
        for labels, value in parsed["hits_total"]["samples"]:
            counter.inc(value, **labels)
        rebuilt.counter("plain_total").inc(
            parsed["plain_total"]["samples"][0][1]
        )
        gauge = rebuilt.gauge("depth", labels=("queue",))
        for labels, value in parsed["depth"]["samples"]:
            gauge.set(value, **labels)
        for family in ("hits_total", "depth", "plain_total"):
            # HELP text is not parsed back; the samples must be.
            rebuilt_doc = rebuilt.get(family).snapshot()
            original = reg.get(family).snapshot()
            assert rebuilt_doc["series"] == original["series"]
            assert rebuilt_doc["kind"] == original["kind"]


class TestEscaping:
    @pytest.mark.parametrize("value", [
        "plain", 'quo"te', "back\\slash", "new\nline",
        '\\"mixed\\n"', "", "trailing\\",
    ])
    def test_escape_unescape_inverse(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet=st.characters(codec="ascii"), max_size=30))
    def test_escape_unescape_inverse_property(self, value):
        assert unescape_label_value(escape_label_value(value)) == value

    @settings(max_examples=60, deadline=None)
    @given(st.text(
        alphabet=st.sampled_from('ab"\\\n_'), max_size=12,
    ))
    def test_exposition_survives_hostile_label_values(self, value):
        reg = MetricsRegistry()
        reg.counter("x_total", labels=("k",)).inc(k=value)
        parsed = parse_prometheus(reg.to_prometheus())
        ((labels, count),) = parsed["x_total"]["samples"]
        assert labels == {"k": value}
        assert count == 1.0


class TestHistogramQuantile:
    def test_nearest_rank_basics(self):
        buckets = (1.0, 2.0, 4.0)
        counts = [2, 1, 1, 0]  # le=1:2, le=2:1, le=4:1, +Inf:0
        assert histogram_quantile(buckets, counts, 0.50) == 1.0
        assert histogram_quantile(buckets, counts, 0.75) == 2.0
        assert histogram_quantile(buckets, counts, 1.00) == 4.0

    def test_inf_tail_clamps_to_largest_finite_bound(self):
        assert histogram_quantile((1.0, 2.0), [0, 0, 5], 0.99) == 2.0

    def test_empty_histogram_is_zero(self):
        assert histogram_quantile((1.0,), [0, 0], 0.95) == 0.0

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            histogram_quantile((1.0,), [1, 0], 1.5)

    def test_family_and_registry_helpers(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        assert h.quantile(0.95) == 0.0  # untouched child
        h.observe(0.05)
        h.observe(0.5)
        assert reg.quantile("lat", 0.5) == 0.1
        assert reg.quantile("lat", 0.95) == 1.0
        with pytest.raises(TypeError):
            reg.counter("c_total").quantile(0.5)

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=40,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_quantile_monotone_and_within_bounds(self, values, q):
        reg = MetricsRegistry()
        h = reg.histogram("v", buckets=(1.0, 10.0, 50.0))
        for value in values:
            h.observe(value)
        result = h.quantile(q)
        assert result in (1.0, 10.0, 50.0)
        assert result <= h.quantile(1.0)
