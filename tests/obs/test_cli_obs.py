"""CLI coverage for observability: trace subcommand, serve/cluster flags."""

import json

from repro.cli import build_parser, main
from repro.obs import validate_chrome_trace


class TestParser:
    def test_trace_defaults(self):
        args = build_parser().parse_args(["trace"])
        assert args.model == "dit"
        assert args.accelerator == "exion24"
        assert args.out == "trace.json"
        assert not args.continuous
        assert args.metrics_out is None

    def test_serve_obs_flags(self):
        args = build_parser().parse_args(
            ["serve", "--simulate", "exion24", "--json", "r.json",
             "--metrics-out", "m.prom", "--trace-out", "t.json"]
        )
        assert args.simulate == "exion24"
        assert args.json == "r.json"
        assert args.metrics_out == "m.prom"
        assert args.trace_out == "t.json"

    def test_cluster_obs_flags(self):
        args = build_parser().parse_args(
            ["cluster", "--metrics-out", "m.json", "--trace-out", "t.json"]
        )
        assert args.metrics_out == "m.json"
        assert args.trace_out == "t.json"


class TestTraceCommand:
    def test_emits_schema_valid_deterministic_trace(self, capsys, tmp_path):
        argv = ["trace", "--model", "dit", "--continuous",
                "--iterations", "12", "--seed", "0"]
        t1, t2 = tmp_path / "t1.json", tmp_path / "t2.json"
        m1 = tmp_path / "m1.json"
        e1 = tmp_path / "e1.jsonl"
        assert main(argv + ["--out", str(t1), "--metrics-out", str(m1),
                            "--events-out", str(e1)]) == 0
        assert main(argv + ["--out", str(t2)]) == 0
        capsys.readouterr()

        assert t1.read_bytes() == t2.read_bytes()
        doc = json.loads(t1.read_text())
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])
        tracks = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e.get("name") == "thread_name"
        }
        assert {"serve/batch", "serve/membership", "hw/timeline"} <= tracks
        metrics = json.loads(m1.read_text())
        names = [f["name"] for f in metrics["families"]]
        assert names == sorted(names)
        assert "repro_membership_events_total" in names
        for line in e1.read_text().splitlines():
            json.loads(line)

    def test_drain_mode_trace(self, capsys, tmp_path):
        out = tmp_path / "t.json"
        assert main(["trace", "--model", "dit", "--iterations", "8",
                     "--requests", "4", "--out", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert validate_chrome_trace(doc) > 0
        assert any(e.get("name") == "batch" for e in doc["traceEvents"])


class TestServeJson:
    def test_continuous_json_deterministic_across_runs(
        self, capsys, tmp_path
    ):
        argv = ["serve", "--model", "dit", "--continuous", "--requests",
                "4", "--batch-size", "2", "--iterations", "6",
                "--simulate", "exion24"]
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        t1, t2 = tmp_path / "ta.json", tmp_path / "tb.json"
        assert main(argv + ["--json", str(p1), "--trace-out", str(t1)]) == 0
        assert main(argv + ["--json", str(p2), "--trace-out", str(t2)]) == 0
        capsys.readouterr()
        assert p1.read_bytes() == p2.read_bytes()
        assert t1.read_bytes() == t2.read_bytes()

        doc = json.loads(p1.read_text())
        assert doc["continuous"] is True
        assert doc["simulate"] == "exion24"
        assert doc["summary"]["timing_source"] == "simulated"
        assert doc["summary"]["ticks"] > 0
        assert len(doc["requests"]) == 4
        row = doc["requests"][0]
        assert {"request_id", "seed", "tenant", "priority", "batch_size",
                "wait_s", "service_s"} <= set(row)
        validate_chrome_trace(json.loads(t1.read_text()))

    def test_drain_json_deterministic_across_runs(self, capsys, tmp_path):
        argv = ["serve", "--model", "dit", "--requests", "4",
                "--batch-size", "2", "--iterations", "6",
                "--simulate", "exion24"]
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        assert main(argv + ["--json", str(p1)]) == 0
        assert main(argv + ["--json", str(p2)]) == 0
        capsys.readouterr()
        assert p1.read_bytes() == p2.read_bytes()
        doc = json.loads(p1.read_text())
        assert doc["summary"]["batches_served"] == 2
        assert doc["summary"]["cache_model_misses"] == 1

    def test_metrics_out_prometheus(self, capsys, tmp_path):
        out = tmp_path / "metrics.prom"
        assert main(
            ["serve", "--model", "dit", "--requests", "2", "--batch-size",
             "2", "--iterations", "6", "--simulate", "exion24",
             "--metrics-out", str(out)]
        ) == 0
        capsys.readouterr()
        text = out.read_text()
        assert "# TYPE repro_batches_total counter" in text
        assert "repro_batches_total 1" in text


class TestClusterObs:
    def test_continuous_json_deterministic_across_runs(
        self, capsys, tmp_path
    ):
        argv = ["cluster", "--replicas", "2", "--requests", "16",
                "--rate", "50", "--iterations", "4", "--continuous"]
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        m1, m2 = tmp_path / "ma.json", tmp_path / "mb.json"
        t1 = tmp_path / "t.json"
        assert main(argv + ["--json", str(p1), "--metrics-out", str(m1),
                            "--trace-out", str(t1)]) == 0
        assert main(argv + ["--json", str(p2), "--metrics-out", str(m2)]) == 0
        capsys.readouterr()
        assert p1.read_bytes() == p2.read_bytes()
        assert m1.read_bytes() == m2.read_bytes()

        doc = json.loads(p1.read_text())
        assert doc["submitted"] == 16
        trace = json.loads(t1.read_text())
        assert validate_chrome_trace(trace) > 0
        names = {e["name"] for e in trace["traceEvents"]}
        assert "queued" in names

    def test_observer_output_matches_unobserved_report(
        self, capsys, tmp_path
    ):
        argv = ["cluster", "--replicas", "2", "--requests", "16",
                "--rate", "50", "--iterations", "4"]
        with_obs = tmp_path / "obs.json"
        without = tmp_path / "plain.json"
        assert main(argv + ["--json", str(with_obs), "--metrics-out",
                            str(tmp_path / "m.prom")]) == 0
        assert main(argv + ["--json", str(without)]) == 0
        capsys.readouterr()
        assert with_obs.read_bytes() == without.read_bytes()
