"""CLI coverage for ``repro obs analyze|report|diff``."""

import json

from repro.cli import build_parser, main

SCENARIO = ["--continuous", "--iterations", "12", "--requests", "8"]


class TestParser:
    def test_analyze_defaults(self):
        args = build_parser().parse_args(["obs", "analyze"])
        assert args.obs_command == "analyze"
        assert args.input is None
        assert args.out == "analysis.json"
        assert args.html is None
        assert not args.cold_start

    def test_diff_args(self):
        args = build_parser().parse_args(
            ["obs", "diff", "a.json", "b.json", "--tolerance", "0.1"]
        )
        assert args.base == "a.json"
        assert args.current == "b.json"
        assert args.tolerance == 0.1

    def test_slo_flags_accumulate(self):
        args = build_parser().parse_args(
            ["obs", "analyze", "--slo", "a:deadline:0.9",
             "--slo", "b:latency:0.25:0.95"]
        )
        assert args.slo == ["a:deadline:0.9", "b:latency:0.25:0.95"]


class TestAnalyze:
    def test_scenario_analysis_is_byte_deterministic(self, capsys, tmp_path):
        a1, a2 = tmp_path / "a1.json", tmp_path / "a2.json"
        h1, h2 = tmp_path / "r1.html", tmp_path / "r2.html"
        argv = ["obs", "analyze"] + SCENARIO
        assert main(argv + ["--out", str(a1), "--html", str(h1)]) == 0
        assert main(argv + ["--out", str(a2), "--html", str(h2)]) == 0
        capsys.readouterr()
        assert a1.read_bytes() == a2.read_bytes()
        assert h1.read_bytes() == h2.read_bytes()

        doc = json.loads(a1.read_text())
        assert doc["mode"] == "continuous"
        assert doc["conservation"]["max_request_residual_ns"] == 0
        assert doc["conservation"]["tenant_residual_ns"] == 0
        assert doc["requests"]
        html = h1.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "<script" not in html

    def test_artifact_input_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        out = tmp_path / "analysis.json"
        assert main(["obs", "analyze"] + SCENARIO
                    + ["--out", str(tmp_path / "direct.json"),
                       "--trace-out", str(trace)]) == 0
        assert main(["obs", "analyze", "--input", str(trace),
                     "--out", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["mode"] == "continuous"
        assert len(doc["requests"]) == 8

    def test_custom_slo_flag(self, capsys, tmp_path):
        out = tmp_path / "a.json"
        assert main(["obs", "analyze"] + SCENARIO
                    + ["--slo", "tight:latency:0.001:0.95",
                       "--out", str(out)]) == 0
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert set(doc["slo"]) == {"tight"}
        assert doc["slo"]["tight"]["bad"] > 0

    def test_trace_out_appends_alert_instants(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        assert main(["obs", "analyze"] + SCENARIO
                    + ["--out", str(tmp_path / "a.json"),
                       "--trace-out", str(trace)]) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        alerts = [e for e in doc["traceEvents"]
                  if e.get("name") == "slo_alert"]
        assert alerts
        assert all("slo" in e["args"] for e in alerts)


class TestReport:
    def test_report_renders_standalone_html(self, capsys, tmp_path):
        out = tmp_path / "report.html"
        assert main(["obs", "report"] + SCENARIO
                    + ["--out", str(out), "--title", "demo run"]) == 0
        capsys.readouterr()
        html = out.read_text()
        assert "demo run" in html
        for needle in ("Critical path", "Tenant", "slo", "svg"):
            assert needle.lower() in html.lower()


class TestDiff:
    def _analysis(self, tmp_path, name, requests="8"):
        out = tmp_path / name
        argv = ["obs", "analyze", "--continuous", "--iterations", "12",
                "--requests", requests, "--out", str(out)]
        assert main(argv) == 0
        return out

    def test_identical_runs_diff_clean(self, capsys, tmp_path):
        a = self._analysis(tmp_path, "a.json")
        b = self._analysis(tmp_path, "b.json")
        assert main(["obs", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "0 regressions" in out

    def test_changed_run_reports_and_exits_nonzero(self, capsys, tmp_path):
        a = self._analysis(tmp_path, "a.json", requests="4")
        b = self._analysis(tmp_path, "b.json", requests="8")
        code = main(["obs", "diff", str(a), str(b)])
        out = capsys.readouterr().out
        assert code == 1
        assert "regressions" in out
