"""Observer integration: instrumented layers emit, and stay inert when off."""

import numpy as np
import pytest

from repro.cluster import (
    PoissonProcess,
    SLOPolicy,
    WorkloadMix,
    build_replicas,
    make_router,
    simulate_cluster,
    synthesize_trace,
)
from repro.obs import Observer, run_trace_scenario
from repro.serve import ContinuousPolicy, ContinuousServer
from repro.serve.cache import ThresholdCache


def small_cluster(observer=None):
    requests = synthesize_trace(
        PoissonProcess(rate_rps=50.0), 16,
        mix=WorkloadMix(models=("dit",), ablation="all"), rng=0,
    )
    replicas = build_replicas(2, iterations=4)
    return simulate_cluster(
        requests, replicas=replicas, router=make_router("jsq"),
        slo=SLOPolicy(timeout_s=0.05), observer=observer,
    )


class TestContinuousServing:
    def test_scenario_emits_membership_and_ticks(self):
        obs = Observer()
        summary = run_trace_scenario(
            model="dit", continuous=True, requests=8, iterations=12,
            observer=obs,
        )
        membership = obs.metrics.get("repro_membership_events_total")
        assert membership.value(kind="join") == summary["joins"]
        assert membership.value(kind="complete") == (
            summary["requests_served"]
        )
        assert membership.value(kind="expire") == (
            summary["requests_expired"]
        )
        ticks = obs.metrics.get("repro_ticks_total")
        assert (
            ticks.value(phase="dense") + ticks.value(phase="sparse")
            == summary["ticks"]
        )
        # The scenario is adversarial enough to exercise preemption.
        assert summary["preemptions"] >= 1

    def test_observer_does_not_change_served_outputs(self):
        from repro.cluster.replica import SimClock
        from repro.obs import drain_simulated

        def serve(observer):
            clock = SimClock()
            server = ContinuousServer(
                "dit",
                policy=ContinuousPolicy(max_batch_size=2),
                total_iterations=6,
                clock=clock,
                tick_time=lambda batch, dense: 0.002 if dense else 0.001,
                observer=observer,
            )
            for i in range(4):
                server.submit(seed=i)
            return drain_simulated(server, clock), server.report()

        plain, plain_report = serve(None)
        observed, obs_report = serve(Observer())
        assert len(plain) == len(observed) == 4
        for a, b in zip(plain, observed):
            np.testing.assert_array_equal(a.result.sample, b.result.sample)
        assert plain_report.summary() == obs_report.summary()

    def test_executor_index_set_edits_are_traced(self):
        obs = Observer()
        server = ContinuousServer(
            "dit",
            policy=ContinuousPolicy(max_batch_size=2),
            total_iterations=6,
            observer=obs,
        )
        server.submit(seed=0)
        server.step()
        server.submit(seed=1)  # joins at the next boundary
        server.run_until_drained()
        edits = [
            e for e in obs.tracer.events if e.name == "index_set_edit"
        ]
        assert edits and all(e.track == "exec/index_set" for e in edits)
        membership = obs.metrics.get("repro_membership_events_total")
        assert membership.value(kind="index_set_edit") == len(edits)


class TestThresholdCache:
    def test_per_level_counts_reach_metrics_and_info(self):
        cache = ThresholdCache()
        cache.observer = Observer()
        cache.model("dit", 0, 4, None)
        cache.model("dit", 0, 4, None)
        lookups = cache.observer.metrics.get("repro_cache_lookups_total")
        assert lookups.value(level="model", outcome="miss") == 1
        assert lookups.value(level="model", outcome="hit") == 1
        info = cache.info()
        assert info["model_hits"] == 1
        assert info["model_misses"] == 1
        assert list(info) == sorted(info)


class TestCluster:
    def test_lifecycle_metrics_and_inertness(self):
        obs = Observer()
        observed = small_cluster(observer=obs)
        plain = small_cluster(observer=None)
        # The observer must not perturb the simulation at all.
        assert observed.to_json() == plain.to_json()

        stages = obs.metrics.get("repro_requests_total")
        assert stages.value(stage="queued") == observed.submitted
        assert stages.value(stage="served") == observed.served
        util = obs.metrics.get("repro_replica_utilization")
        assert util.value(replica="replica0") >= 0.0
        dispatch_tracks = {
            s.track for s in obs.tracer.spans
            if s.name.startswith("dispatch[")
        }
        assert dispatch_tracks <= {"replica/replica0", "replica/replica1"}
        assert dispatch_tracks

    def test_slo_drops_are_observed(self):
        obs = Observer()
        report = small_cluster(observer=obs)
        drops = report.timeout_drops
        if drops == 0:
            pytest.skip("scenario produced no timeout drops")
        slo = obs.metrics.get("repro_slo_events_total")
        assert slo.value(reason="timeout") == drops


class TestHwTimeline:
    def test_phase_segments_tile_the_timeline(self):
        from repro.hw.accelerator import ExionAccelerator
        from repro.hw.timeline import phase_segments, simulate_timeline
        from repro.workloads.specs import get_spec

        timeline = simulate_timeline(
            ExionAccelerator.exion24(), get_spec("dit"), iterations=8,
        )
        segments = phase_segments(timeline)
        assert len(segments) == 8
        assert segments[0]["start_s"] == 0.0
        for prev, cur in zip(segments, segments[1:]):
            assert cur["start_s"] == pytest.approx(prev["end_s"])
        assert segments[-1]["end_s"] == pytest.approx(
            timeline.total_latency_s
        )
        assert {s["phase"] for s in segments} == {"dense", "sparse"}

        obs = Observer()
        obs.observe_timeline(timeline)
        assert len(obs.tracer.spans) == 8
        phase_s = obs.metrics.get("repro_phase_seconds_total")
        total = sum(
            child.value for _, child in phase_s.children()
        )
        assert total == pytest.approx(timeline.total_latency_s)
