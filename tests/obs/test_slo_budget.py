"""SLO error budgets: spec grammar, burn-rate windows, alert latching."""

import pytest

from repro.obs.analyze import (
    SLOSpec,
    alert_events,
    default_slos,
    evaluate_slos,
    parse_slo_spec,
)
from repro.obs.analyze.attribution import Attribution, RequestAttribution
from repro.obs.analyze.slo import MAX_SERIES_POINTS

NS = 1_000_000_000


def _request(rid, submit_ns, end_ns, outcome="served", deadline_ns=None):
    return RequestAttribution(
        request_id=rid, submit_ns=submit_ns, end_ns=end_ns,
        outcome=outcome, deadline_ns=deadline_ns,
    )


def _attribution(requests, horizon_ns=None):
    horizon = horizon_ns or max((r.end_ns for r in requests), default=1)
    return Attribution(requests=list(requests), horizon_ns=horizon)


class TestSpecs:
    def test_parse_latency_spec(self):
        spec = parse_slo_spec("p95:latency:0.25:0.95")
        assert spec == SLOSpec(
            name="p95", kind="latency", target=0.95,
            threshold_ns=250_000_000,
        )

    def test_parse_deadline_spec(self):
        spec = parse_slo_spec("hit:deadline:0.99")
        assert spec.kind == "deadline"
        assert spec.threshold_ns is None

    @pytest.mark.parametrize("text", [
        "", "x", "a:latency:0.25", "a:deadline:0.5:0.9", "a:weird:0.9",
    ])
    def test_bad_grammar_rejected(self, text):
        with pytest.raises(ValueError):
            parse_slo_spec(text)

    @pytest.mark.parametrize("target", [0.0, 1.0, -0.5, 2.0])
    def test_target_must_be_fractional(self, target):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="deadline", target=target)

    def test_latency_spec_needs_threshold(self):
        with pytest.raises(ValueError):
            SLOSpec(name="x", kind="latency", target=0.9)

    def test_default_slos_are_valid(self):
        specs = default_slos()
        assert [s.kind for s in specs] == ["latency", "deadline"]


class TestEvaluation:
    def test_all_good_consumes_no_budget(self):
        att = _attribution([
            _request(i, i * NS, i * NS + NS // 10) for i in range(10)
        ])
        spec = SLOSpec(name="lat", kind="latency", target=0.9,
                       threshold_ns=NS)
        doc = evaluate_slos(att, [spec])["lat"]
        assert doc["total"] == 10
        assert doc["bad"] == 0
        assert doc["compliance"] == 1.0
        assert doc["budget_consumed_ratio"] == 0.0
        assert doc["alerts"] == []

    def test_sustained_violation_fires_one_latched_alert(self):
        # Every request blows the threshold: burn is maximal in both
        # windows at every sample, so exactly one latched alert fires.
        att = _attribution([
            _request(i, i * NS, i * NS + 2 * NS) for i in range(10)
        ])
        spec = SLOSpec(name="lat", kind="latency", target=0.9,
                       threshold_ns=NS // 2)
        doc = evaluate_slos(att, [spec])["lat"]
        assert doc["bad"] == 10
        assert len(doc["alerts"]) == 1
        assert doc["alerts"][0]["burn_long"] == pytest.approx(10.0)

    def test_recovery_unlatches_for_a_second_alert(self):
        # Bad burst, long clean stretch (short window drains), bad burst
        # again: two alert events, not one and not ten.
        requests = []
        rid = 0
        for i in range(3):  # bad burst
            requests.append(_request(rid, 0, (i + 1) * NS, outcome="expired"))
            rid += 1
        for i in range(30):  # clean recovery
            requests.append(
                _request(rid, 0, (10 + i) * NS + NS // 100)
            )
            rid += 1
        for i in range(3):  # second burst
            requests.append(
                _request(rid, 0, (50 + i) * NS, outcome="expired")
            )
            rid += 1
        att = _attribution(requests, horizon_ns=60 * NS)
        spec = SLOSpec(name="lat", kind="latency", target=0.5,
                       threshold_ns=100 * NS)
        doc = evaluate_slos(att, [spec])["lat"]
        assert len(doc["alerts"]) == 2

    def test_deadline_kind_only_counts_deadline_requests(self):
        att = _attribution([
            _request(0, 0, NS),  # no deadline: not a sample
            _request(1, 0, NS, deadline_ns=2 * NS),   # met
            _request(2, 0, 3 * NS, deadline_ns=2 * NS),  # missed
        ])
        spec = SLOSpec(name="dl", kind="deadline", target=0.5)
        doc = evaluate_slos(att, [spec])["dl"]
        assert doc["total"] == 2
        assert doc["good"] == 1

    def test_open_requests_are_not_samples(self):
        att = _attribution([_request(0, 0, NS, outcome="open")])
        doc = evaluate_slos(att, default_slos())["latency-250ms"]
        assert doc["total"] == 0
        assert doc["compliance"] == 1.0

    def test_burn_series_is_decimated(self):
        att = _attribution([
            _request(i, i * NS, i * NS + NS) for i in range(500)
        ])
        spec = SLOSpec(name="lat", kind="latency", target=0.9,
                       threshold_ns=2 * NS)
        doc = evaluate_slos(att, [spec])["lat"]
        assert len(doc["burn_series"]) <= MAX_SERIES_POINTS + 1
        assert doc["burn_series"][-1][0] == att.requests[-1].end_ns

    def test_evaluation_is_deterministic(self):
        att = _attribution([
            _request(i, i * NS, i * NS + (2 * NS if i % 3 else NS // 10))
            for i in range(20)
        ])
        specs = [SLOSpec(name="lat", kind="latency", target=0.9,
                         threshold_ns=NS)]
        assert evaluate_slos(att, specs) == evaluate_slos(att, specs)


class TestAlertEvents:
    def test_alerts_flatten_sorted_by_time(self):
        results = {
            "b": {"alerts": [{"ts_ns": 2 * NS, "burn_long": 3.0,
                              "burn_short": 4.0}]},
            "a": {"alerts": [{"ts_ns": NS, "burn_long": 2.0,
                              "burn_short": 2.5}]},
        }
        events = alert_events(results)
        assert [name for name, _, _ in events] == ["slo_alert"] * 2
        assert [args["slo"] for _, _, args in events] == ["a", "b"]
        assert events[0][1] == pytest.approx(1.0)
