"""Unit tests for the zero-dependency metrics registry."""

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS, MetricFamily


class TestFamilies:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        c = reg.counter("hits_total", labels=("level",))
        c.inc(level="model")
        c.inc(2, level="model")
        c.inc(level="table")
        assert c.value(level="model") == 3
        assert c.value(level="table") == 1
        assert c.value(level="pipeline") == 0.0  # never touched

    def test_counter_rejects_decrements(self):
        c = MetricsRegistry().counter("n_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_overwrites(self):
        g = MetricsRegistry().gauge("depth", labels=("q",))
        g.set(4, q="a")
        g.set(2, q="a")
        assert g.value(q="a") == 2.0

    def test_histogram_buckets_and_sum(self):
        h = MetricsRegistry().histogram("fill", buckets=(1, 2, 4))
        for v in (1, 2, 3, 100):
            h.observe(v)
        ((values, child),) = h.children()
        assert values == ()
        assert child.bucket_counts == [1, 1, 1, 1]  # le=1,2,4,+Inf
        assert child.sum == 106
        assert child.count == 4

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        c = reg.counter("x_total")
        with pytest.raises(TypeError):
            c.set(1.0)
        with pytest.raises(TypeError):
            c.observe(1.0)
        with pytest.raises(TypeError):
            reg.gauge("g").inc()

    def test_label_schema_enforced(self):
        c = MetricsRegistry().counter("y_total", labels=("kind",))
        with pytest.raises(ValueError):
            c.inc()  # missing label
        with pytest.raises(ValueError):
            MetricFamily("bad name", "counter")
        with pytest.raises(ValueError):
            MetricFamily("g", "gauge", buckets=(1,))

    def test_default_buckets_are_sorted_powers_of_two(self):
        assert DEFAULT_BUCKETS == tuple(sorted(DEFAULT_BUCKETS))


class TestRegistry:
    def test_reregistration_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("hits_total", labels=("level",))
        b = reg.counter("hits_total", labels=("level",))
        assert a is b
        assert len(reg) == 1

    def test_reregistration_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", labels=("level",))
        with pytest.raises(ValueError):
            reg.gauge("hits_total")
        with pytest.raises(ValueError):
            reg.counter("hits_total", labels=("other",))

    def test_snapshot_orders_families_and_children(self):
        reg = MetricsRegistry()
        reg.counter("zzz_total").inc()
        c = reg.counter("aaa_total", labels=("k",))
        c.inc(k="b")
        c.inc(k="a")
        snap = reg.snapshot()
        assert [f["name"] for f in snap["families"]] == [
            "aaa_total", "zzz_total",
        ]
        assert [s["labels"]["k"] for s in snap["families"][0]["series"]] == [
            "a", "b",
        ]

    def test_to_json_is_canonical_and_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.gauge("depth", labels=("component",)).set(3, component="q")
            reg.histogram("fill").observe(2)
            return reg

        j1, j2 = build().to_json(), build().to_json()
        assert j1 == j2
        assert j1.endswith("\n")
        doc = json.loads(j1)
        assert json.dumps(
            doc, sort_keys=True, separators=(",", ":")
        ) + "\n" == j1

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_hits_total", "Cache hits", labels=("level",))
        c.inc(3, level="model")
        h = reg.histogram("repro_fill", buckets=(1, 2))
        h.observe(1)
        h.observe(5)
        text = reg.to_prometheus()
        lines = text.splitlines()
        assert "# HELP repro_hits_total Cache hits" in lines
        assert "# TYPE repro_hits_total counter" in lines
        assert 'repro_hits_total{level="model"} 3' in lines
        # Buckets are cumulative and end with +Inf.
        assert 'repro_fill_bucket{le="1"} 1' in lines
        assert 'repro_fill_bucket{le="2"} 1' in lines
        assert 'repro_fill_bucket{le="+Inf"} 2' in lines
        assert "repro_fill_sum 6" in lines
        assert "repro_fill_count 2" in lines
        assert text.endswith("\n")
