"""Hardening tests for ``validate_chrome_trace``.

The validator is the schema gate between the exporter and every
downstream consumer (Perfetto, the analytics engine, the CLI). It must
reject malformed documents loudly — including the numeric edge cases
(NaN, infinities, bools posing as ints, negative durations) that a
naive ``isinstance`` check waves through — while accepting everything
the exporter actually emits.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import (
    Observer,
    chrome_trace,
    run_trace_scenario,
    validate_chrome_trace,
)


def _event(**overrides):
    base = {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0,
            "dur": 1.0}
    base.update(overrides)
    return base


def _doc(*events):
    return {"traceEvents": list(events)}


class TestRejections:
    @pytest.mark.parametrize("doc", [
        None, [], {}, {"other": []}, {"traceEvents": {}},
        {"traceEvents": "nope"},
    ])
    def test_document_shape(self, doc):
        with pytest.raises(ValueError):
            validate_chrome_trace(doc)

    @pytest.mark.parametrize("event", [
        "not-a-dict",
        _event(ph="Q"),
        _event(ph=None),
        {"ph": "X", "pid": 1, "tid": 1, "ts": 0, "dur": 0},  # no name
        _event(name=""),
        _event(name=7),
    ])
    def test_phase_and_name(self, event):
        with pytest.raises(ValueError):
            validate_chrome_trace(_doc(event))

    @pytest.mark.parametrize("event", [
        _event(pid="1"),
        _event(tid=1.5),
        _event(pid=True),  # bool is an int subclass; still malformed
        _event(tid=False),
    ])
    def test_pid_tid_must_be_real_integers(self, event):
        with pytest.raises(ValueError, match="integer"):
            validate_chrome_trace(_doc(event))

    @pytest.mark.parametrize("ts", [
        -1, -0.001, float("nan"), float("inf"), float("-inf"),
        "0", None, True,
    ])
    def test_ts_must_be_finite_nonnegative(self, ts):
        with pytest.raises(ValueError, match="finite ts"):
            validate_chrome_trace(_doc(_event(ts=ts)))

    @pytest.mark.parametrize("dur", [
        -1, -1e-9, float("nan"), float("inf"), float("-inf"),
        "1", None, False,
    ])
    def test_negative_or_nonfinite_duration_rejected(self, dur):
        with pytest.raises(ValueError, match="finite dur"):
            validate_chrome_trace(_doc(_event(dur=dur)))

    def test_end_before_start_cannot_be_encoded(self):
        # Chrome traces carry (ts, dur), so "end < start" is exactly a
        # negative duration — pinned here as the named invariant.
        with pytest.raises(ValueError, match="finite dur"):
            validate_chrome_trace(_doc(_event(ts=5.0, dur=-2.0)))

    def test_instant_scope_and_metadata_args(self):
        with pytest.raises(ValueError, match="scope"):
            validate_chrome_trace(
                _doc({"name": "i", "ph": "i", "pid": 1, "tid": 1,
                      "ts": 0.0, "s": "x"})
            )
        with pytest.raises(ValueError, match="args.name"):
            validate_chrome_trace(
                _doc({"name": "process_name", "ph": "M", "pid": 1,
                      "tid": 0, "args": {}})
            )
        with pytest.raises(ValueError, match="id"):
            validate_chrome_trace(
                _doc({"name": "open", "ph": "b", "pid": 1, "tid": 1,
                      "ts": 0.0})
            )

    def test_error_names_the_offending_index(self):
        good = _event()
        with pytest.raises(ValueError, match=r"traceEvents\[1\]"):
            validate_chrome_trace(_doc(good, _event(ts=-1)))


class TestAcceptance:
    def test_real_export_validates(self):
        observer = Observer()
        run_trace_scenario(model="dit", continuous=True, requests=4,
                           iterations=8, observer=observer)
        doc = chrome_trace(observer.tracer)
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])

    def test_zero_duration_and_integer_timestamps_accepted(self):
        assert validate_chrome_trace(
            _doc(_event(ts=0, dur=0), _event(ts=10, dur=0.0))
        ) == 2


_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-10, max_value=10),
    st.floats(allow_nan=True, allow_infinity=True, width=32),
    st.text(max_size=5),
)


@st.composite
def fuzzed_events(draw):
    """Events mutated field-by-field from a valid template."""
    event = _event(ph=draw(st.sampled_from(("M", "X", "i", "b", "e", "Z"))))
    for key in ("name", "pid", "tid", "ts", "dur", "s", "id", "args"):
        if draw(st.booleans()):
            event[key] = draw(_SCALARS)
    return event


class TestFuzz:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(fuzzed_events(), max_size=4))
    def test_never_crashes_only_valueerror(self, events):
        # Malformed documents must produce ValueError, never TypeError /
        # KeyError / AssertionError escaping from the validator.
        try:
            count = validate_chrome_trace(_doc(*events))
        except ValueError:
            pass
        else:
            assert count == len(events)
