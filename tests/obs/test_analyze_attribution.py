"""Attribution exactness: components telescope, tenant shares conserve.

The analytics engine promises *bit-exact* conservation on simulated
traces: every request's components sum to its end-to-end latency, and
per-tenant tick shares sum to fleet busy time. These tests pin those
identities on real scenario traces (continuous, drain, cold-start,
cluster) rather than on synthetic fixtures, so any hook-site or
analyzer drift breaks them immediately.
"""

import pytest

from repro.obs import Observer, events_jsonl
from repro.obs.analyze import (
    COMPONENTS,
    TraceRecords,
    analyze,
    analyze_records,
    analyze_tracer,
    detect_mode,
)
from repro.obs.scenario import run_trace_scenario

ITERATIONS = 12


def _scenario_attribution(**kwargs):
    observer = Observer()
    run_trace_scenario(
        model="dit", iterations=ITERATIONS, observer=observer, **kwargs
    )
    return analyze_tracer(observer.tracer).attribution


@pytest.fixture(scope="module")
def continuous():
    return _scenario_attribution(continuous=True, requests=8)


@pytest.fixture(scope="module")
def drain():
    return _scenario_attribution(continuous=False, requests=6)


class TestRequestExactness:
    def test_components_sum_to_latency_bit_exactly(self, continuous):
        assert continuous.requests
        for request in continuous.requests:
            assert sum(request.components.values()) == request.latency_ns
            assert request.residual_ns == 0

    def test_all_component_keys_always_present(self, continuous):
        for request in continuous.requests:
            assert tuple(request.components) == COMPONENTS

    def test_simulated_runs_have_no_residual_bucket(self, continuous):
        assert continuous.fleet_components()["other_ns"] == 0
        assert continuous.max_request_residual_ns() == 0

    def test_drain_mode_components_exact(self, drain):
        assert drain.mode == "drain"
        for request in drain.requests:
            assert request.residual_ns == 0
        assert drain.max_request_residual_ns() == 0

    def test_scenario_produces_interesting_outcomes(self, continuous):
        outcomes = continuous.outcomes()
        assert outcomes.get("served", 0) > 0
        # The cycle plants a tight deadline on every 5th request.
        assert outcomes.get("expired", 0) > 0
        fleet = continuous.fleet_components()
        assert fleet["dense_ns"] > 0
        assert fleet["sparse_ns"] > 0
        assert fleet["preempt_ns"] > 0


class TestTenantConservation:
    def test_tenant_tick_shares_sum_to_busy_time(self, continuous):
        assert continuous.busy_ns > 0
        assert continuous.tenant_residual_ns() == 0

    def test_tenant_breakdowns_internally_consistent(self, continuous):
        for doc in continuous.tenants.values():
            assert sum(doc["by_phase"].values()) == doc["tick_ns"]
            assert sum(doc["by_priority"].values()) == doc["tick_ns"]
            assert sum(doc["by_model"].values()) == doc["tick_ns"]

    def test_energy_accounted_and_conserved(self, continuous):
        assert continuous.energy_nj > 0
        shared = sum(
            doc["energy_nj"] for doc in continuous.tenants.values()
        )
        assert shared == continuous.energy_nj

    def test_scenario_tenants_both_present(self, continuous):
        assert set(continuous.tenants) >= {"alpha", "beta"}


class TestColdStart:
    def test_cold_surcharge_attributed(self):
        attribution = _scenario_attribution(
            continuous=True, requests=8, cold_start=True
        )
        assert attribution.fleet_components()["cold_ns"] > 0
        assert attribution.max_request_residual_ns() == 0
        assert attribution.tenant_residual_ns() == 0


class TestClusterMode:
    @pytest.fixture(scope="class")
    def cluster(self):
        from repro.cluster.router import make_router
        from repro.cluster.simulator import build_replicas, simulate_cluster
        from repro.cluster.traffic import PoissonProcess, synthesize_trace

        observer = Observer()
        requests = synthesize_trace(
            PoissonProcess(rate_rps=2.0), 12, rng=0,
            tenants=("alpha", "beta"),
        )
        simulate_cluster(
            requests, build_replicas(2, iterations=ITERATIONS),
            make_router("jsq"), observer=observer,
        )
        return analyze_tracer(observer.tracer).attribution

    def test_mode_detected(self, cluster):
        assert cluster.mode == "cluster"

    def test_tenant_shares_sum_to_fleet_busy_time(self, cluster):
        assert cluster.busy_ns > 0
        assert cluster.tenant_residual_ns() == 0

    def test_replica_busy_decomposes_fleet(self, cluster):
        assert set(cluster.replicas) == {"replica0", "replica1"}
        assert sum(
            doc["busy_ns"] for doc in cluster.replicas.values()
        ) == cluster.busy_ns

    def test_served_rollups_are_exact(self, cluster):
        for request in cluster.requests:
            assert request.outcome == "served"
            assert request.residual_ns == 0


class TestRoundTrip:
    def test_jsonl_reanalysis_is_bit_identical(self):
        observer = Observer()
        run_trace_scenario(
            model="dit", continuous=True, requests=8,
            iterations=ITERATIONS, observer=observer,
        )
        in_memory = analyze_tracer(observer.tracer)
        records = TraceRecords.from_jsonl(events_jsonl(observer.tracer))
        round_trip = analyze(records)
        a, b = in_memory.to_dict(), round_trip.to_dict()
        a["meta"] = b["meta"] = {}
        assert a == b

    def test_empty_trace_analyzes_cleanly(self):
        attribution = analyze_records(TraceRecords())
        assert attribution.requests == []
        assert attribution.busy_ns == 0
        assert attribution.tenant_residual_ns() == 0

    def test_mode_detection(self):
        assert detect_mode(TraceRecords()) == "continuous"
