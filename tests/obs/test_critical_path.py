"""Critical-path extraction: synthetic DAGs plus property checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.analyze import CPNode, critical_path


def _node(key, start, end, label=""):
    return CPNode(key=key, start_ns=start, end_ns=end, label=label)


class TestChains:
    def test_single_node_is_its_own_path(self):
        path = critical_path([_node("a", 0, 30)], [])
        assert path.total_ns == 30
        assert [n.key for n in path.nodes] == ["a"]
        assert path.edges == []
        assert path.span_ns == 30

    def test_linear_chain_sums_durations_and_slack(self):
        nodes = [
            _node("a", 0, 10),
            _node("b", 15, 25),
            _node("c", 25, 40),
        ]
        path = critical_path(nodes, [("a", "b"), ("b", "c")])
        assert path.total_ns == 10 + 10 + 15
        assert [n.key for n in path.nodes] == ["a", "b", "c"]
        assert [e["slack_ns"] for e in path.edges] == [5, 0]

    def test_empty_graph(self):
        path = critical_path([], [])
        assert path.total_ns == 0
        assert path.nodes == []


class TestDiamond:
    def test_longer_arm_wins(self):
        nodes = [
            _node("src", 0, 10),
            _node("fast", 10, 15),
            _node("slow", 10, 40),
            _node("sink", 40, 50),
        ]
        edges = [
            ("src", "fast"), ("src", "slow"),
            ("fast", "sink"), ("slow", "sink"),
        ]
        path = critical_path(nodes, edges)
        assert [n.key for n in path.nodes] == ["src", "slow", "sink"]
        assert path.total_ns == 10 + 30 + 10

    def test_equal_arms_tie_break_deterministically(self):
        nodes = [
            _node("src", 0, 10),
            _node("armA", 10, 20),
            _node("armB", 10, 20),
            _node("sink", 20, 30),
        ]
        edges = [
            ("src", "armA"), ("src", "armB"),
            ("armA", "sink"), ("armB", "sink"),
        ]
        path = critical_path(nodes, edges)
        # Ties break toward the smaller key, always.
        assert [n.key for n in path.nodes] == ["src", "armA", "sink"]


class TestFanOut:
    def test_widest_leaf_terminates_the_path(self):
        nodes = [_node("root", 0, 5)] + [
            _node(f"leaf{i}", 5, 5 + 10 * (i + 1)) for i in range(3)
        ]
        edges = [("root", f"leaf{i}") for i in range(3)]
        path = critical_path(nodes, edges)
        assert [n.key for n in path.nodes] == ["root", "leaf2"]
        assert path.total_ns == 5 + 30

    def test_disconnected_long_singleton_beats_short_chain(self):
        nodes = [
            _node("a", 0, 10),
            _node("b", 10, 20),
            _node("island", 100, 200),
        ]
        path = critical_path(nodes, [("a", "b")])
        assert [n.key for n in path.nodes] == ["island"]
        assert path.total_ns == 100


class TestValidation:
    def test_duplicate_key_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            critical_path([_node("a", 0, 1), _node("a", 1, 2)], [])

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            critical_path([_node("a", 0, 1)], [("a", "ghost")])

    def test_time_violating_edge_rejected(self):
        nodes = [_node("a", 0, 10), _node("b", 5, 15)]
        with pytest.raises(ValueError, match="violates time"):
            critical_path(nodes, [("a", "b")])

    def test_cycle_rejected(self):
        nodes = [_node("a", 0, 0), _node("b", 0, 0)]
        with pytest.raises(ValueError, match="cycle"):
            critical_path(nodes, [("a", "b"), ("b", "a")])

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError, match="before start"):
            CPNode(key="x", start_ns=10, end_ns=5)


@st.composite
def interval_dags(draw):
    """Random interval DAG: nodes on an integer timeline, edges only
    where time allows them (successor starts at/after predecessor end)."""
    count = draw(st.integers(min_value=1, max_value=8))
    nodes = []
    for i in range(count):
        start = draw(st.integers(min_value=0, max_value=500))
        length = draw(st.integers(min_value=0, max_value=200))
        nodes.append(_node(f"n{i:02d}", start, start + length))
    edges = []
    for u in nodes:
        for v in nodes:
            if u.key < v.key and v.start_ns >= u.end_ns:
                if draw(st.booleans()):
                    edges.append((u.key, v.key))
    return nodes, edges


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(interval_dags())
    def test_path_bounded_by_trace_extent_and_any_span(self, dag):
        nodes, edges = dag
        path = critical_path(nodes, edges)
        # At least any single node's duration (singletons are paths).
        assert path.total_ns >= max(n.duration_ns for n in nodes)
        # At most the full trace extent: chained nodes never overlap.
        assert path.total_ns <= path.span_ns
        # The reported chain is consistent: sums match, edges respect
        # time, and slack is the literal idle gap.
        assert path.total_ns == sum(n.duration_ns for n in path.nodes)
        for u, v, edge in zip(
            path.nodes, path.nodes[1:], path.edges
        ):
            assert v.start_ns >= u.end_ns
            assert edge["slack_ns"] == v.start_ns - u.end_ns

    @settings(max_examples=40, deadline=None)
    @given(interval_dags())
    def test_deterministic_across_input_order(self, dag):
        nodes, edges = dag
        forward = critical_path(nodes, edges)
        backward = critical_path(
            list(reversed(nodes)), list(reversed(edges))
        )
        assert forward.to_dict() == backward.to_dict()
