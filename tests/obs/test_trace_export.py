"""Tracer semantics and the Chrome trace-event / JSONL exporters."""

import json

import pytest

from repro.obs import (
    Tracer,
    chrome_trace,
    chrome_trace_json,
    events_jsonl,
    validate_chrome_trace,
)


def small_trace() -> Tracer:
    tracer = Tracer()
    parent = tracer.span("tick[dense]", "serve/batch", 0.0, 1.0, batch=2)
    tracer.span("tick[sparse]", "serve/batch", 1.0, 1.5, parent=parent)
    tracer.event("join", "serve/membership", 0.0, request_id=0)
    tracer.event("evict", "serve/membership", 1.0, span=parent, reason="x")
    tracer.begin_span("pending", "cluster/requests", 0.5)  # stays open
    return tracer


class TestTracer:
    def test_ids_are_emission_order(self):
        tracer = small_trace()
        assert [s.span_id for s in tracer.spans] == [0, 1, 2]
        assert [e.event_id for e in tracer.events] == [0, 1]
        assert tracer.spans[1].parent_id == 0
        assert tracer.events[1].span_id == 0

    def test_end_span_errors(self):
        tracer = Tracer()
        span = tracer.begin_span("s", "t", 1.0)
        with pytest.raises(ValueError):
            tracer.end_span(span, 0.5)  # ends before start
        tracer.end_span(span, 2.0)
        with pytest.raises(ValueError):
            tracer.end_span(span, 3.0)  # double end
        assert span.duration_s == 1.0

    def test_tracks_and_records_sorted(self):
        tracer = small_trace()
        assert tracer.tracks() == [
            "cluster/requests", "serve/batch", "serve/membership",
        ]
        records = tracer.records()
        times = [r["start_s"] if r["type"] == "span" else r["ts_s"]
                 for r in records]
        assert times == sorted(times)
        # Coincident timestamps: spans order before events.
        at_zero = [
            r["type"] for r, t in zip(records, times) if t == 0.0
        ]
        assert at_zero == ["span", "event"]

    def test_open_spans(self):
        tracer = small_trace()
        assert [s.name for s in tracer.open_spans()] == ["pending"]


class TestChromeExport:
    def test_document_shape(self):
        doc = chrome_trace(small_trace())
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])
        assert doc["displayTimeUnit"] == "ms"
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        # process_name + one thread_name per track, tids ranked by name.
        assert meta[0]["name"] == "process_name"
        threads = {e["args"]["name"]: e["tid"] for e in meta[1:]}
        assert threads == {
            "cluster/requests": 1, "serve/batch": 2, "serve/membership": 3,
        }

    def test_span_and_event_mapping(self):
        doc = chrome_trace(small_trace())
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {
            "tick[dense]", "tick[sparse]",
        }
        dense = next(e for e in complete if e["name"] == "tick[dense]")
        assert dense["ts"] == 0.0 and dense["dur"] == 1e6  # microseconds
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"join", "evict"}
        assert all(e["s"] == "t" for e in instants)
        open_async = [e for e in doc["traceEvents"] if e["ph"] == "b"]
        assert [e["name"] for e in open_async] == ["pending"]
        assert "id" in open_async[0]

    def test_json_is_canonical_and_deterministic(self):
        j1 = chrome_trace_json(small_trace())
        j2 = chrome_trace_json(small_trace())
        assert j1 == j2
        doc = json.loads(j1)
        assert json.dumps(
            doc, sort_keys=True, separators=(",", ":")
        ) + "\n" == j1

    def test_validate_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": "nope"})
        good = chrome_trace(small_trace())
        bad = dict(good)
        bad["traceEvents"] = good["traceEvents"] + [
            {"ph": "Q", "name": "x", "pid": 1, "tid": 1, "ts": 0.0}
        ]
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)


class TestJsonl:
    def test_one_canonical_record_per_line(self):
        tracer = small_trace()
        text = events_jsonl(tracer)
        lines = text.splitlines()
        assert len(lines) == len(tracer.records())
        parsed = [json.loads(line) for line in lines]
        assert [json.dumps(p, sort_keys=True, separators=(",", ":"))
                for p in parsed] == lines
        assert {p["type"] for p in parsed} == {"span", "event"}
