"""Unit + property tests for the end-to-end ConMerge pass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitmask import Bitmask
from repro.core.conmerge.cvg import conmerge, conmerge_tiled


class TestConMerge:
    def test_empty_mask(self):
        result = conmerge(Bitmask(np.zeros((8, 16), dtype=bool)))
        assert result.condensed_cols == 0
        assert result.remaining_column_ratio == 0.0
        assert not result.blocks

    def test_dense_mask_not_compactable(self):
        result = conmerge(Bitmask.dense(8, 32), width=8)
        assert result.condense_ratio == 1.0
        # Dense columns cannot merge: remaining ratio stays 1.
        assert result.remaining_column_ratio == pytest.approx(1.0)

    def test_sparse_mask_compacts(self, rng):
        mask = Bitmask.random(16, 128, sparsity=0.95, rng=rng)
        result = conmerge(mask)
        assert result.remaining_column_ratio < result.condense_ratio
        assert result.utilization > 0.0

    def test_merging_bounded_by_triple_buffering(self, rng):
        """Remaining ratio can never drop below condensed/3 (two merges)."""
        mask = Bitmask.random(16, 128, sparsity=0.99, rng=rng)
        result = conmerge(mask)
        assert result.physical_columns * 3 + 48 >= result.condensed_cols

    def test_element_positions_preserved(self, rng):
        mask = Bitmask.random(16, 96, sparsity=0.9, rng=rng)
        result = conmerge(mask)
        expected = {(int(r), int(c)) for r, c in np.argwhere(mask.mask)}
        assert result.element_positions() == expected

    def test_blocks_satisfy_hw_invariants(self, rng):
        mask = Bitmask.random(16, 96, sparsity=0.9, rng=rng)
        for block in conmerge(mask).blocks:
            block.validate()

    def test_unsorted_mode_also_correct(self, rng):
        mask = Bitmask.random(16, 96, sparsity=0.9, rng=rng)
        result = conmerge(mask, sort=False)
        expected = {(int(r), int(c)) for r, c in np.argwhere(mask.mask)}
        assert result.element_positions() == expected

    def test_sorting_reduces_cycles(self):
        """The Fig. 12 claim: sparsity-sorted merging needs fewer CVG
        cycles than arrival-order merging, on column-structured masks like
        the FFN layers produce."""
        from repro.workloads.generator import ffn_output_bitmask

        totals = {"sorted": 0, "random": 0}
        for seed in range(5):
            mask = ffn_output_bitmask(
                16, 256, sparsity=0.9, dead_col_fraction=0.2,
                rng=np.random.default_rng(seed),
            )
            totals["sorted"] += conmerge(mask, sort=True).cycles
            totals["random"] += conmerge(mask, sort=False).cycles
        assert totals["sorted"] < totals["random"]


class TestTiled:
    def test_tile_count(self, rng):
        mask = Bitmask.random(64, 32, sparsity=0.9, rng=rng)
        result = conmerge_tiled(mask, tile_rows=16)
        assert len(result.tile_results) == 4

    def test_aggregates_sum(self, rng):
        mask = Bitmask.random(48, 32, sparsity=0.9, rng=rng)
        result = conmerge_tiled(mask, tile_rows=16)
        assert result.original_columns == 3 * 32
        assert result.cycles == sum(r.cycles for r in result.tile_results)

    def test_tiling_improves_condensing(self, rng):
        """Per-tile condensing removes columns that are only locally dead —
        the effect that lets merging reach single-digit remaining ratios on
        large-row models (Fig. 9)."""
        mask = Bitmask.random(256, 64, sparsity=0.97, rng=rng)
        whole = conmerge(Bitmask(mask.mask[:16]), width=16)
        tiled = conmerge_tiled(mask, tile_rows=16)
        from repro.core.conmerge.condense import condense

        assert tiled.condense_ratio < condense(mask).remaining_ratio + 1e-9

    def test_ragged_final_tile(self, rng):
        mask = Bitmask.random(20, 32, sparsity=0.9, rng=rng)
        result = conmerge_tiled(mask, tile_rows=16)
        assert len(result.tile_results) == 2
        assert result.tile_results[1].rows == 4


@given(
    st.integers(0, 10_000),
    st.floats(0.5, 0.99),
    st.integers(4, 16),
    st.integers(8, 64),
)
@settings(max_examples=40, deadline=None)
def test_conmerge_correctness_property(seed, sparsity, rows, cols):
    """For arbitrary masks: every non-sparse element appears exactly once,
    all hardware invariants hold, and compaction never loses columns."""
    rng = np.random.default_rng(seed)
    mask = Bitmask.random(rows, cols, sparsity=sparsity, rng=rng)
    result = conmerge(mask)
    expected = {(int(r), int(c)) for r, c in np.argwhere(mask.mask)}
    assert result.element_positions() == expected
    total_cells = sum(b.num_elements for b in result.blocks)
    assert total_cells == mask.nnz  # exactly once, no duplicates
    for block in result.blocks:
        block.validate()
    assert 0.0 <= result.remaining_column_ratio <= 1.0 + 1e-9
