"""Unit tests for the CAU SortBuffer."""

import numpy as np
import pytest

from repro.core.bitmask import Bitmask
from repro.core.conmerge.sortbuffer import (
    SortBuffer,
    SparsityClass,
    classify,
)


class TestClassify:
    def test_levels(self):
        assert classify(16, 16) is SparsityClass.HIGH_DENSE
        assert classify(10, 16) is SparsityClass.DENSE
        assert classify(6, 16) is SparsityClass.SPARSE
        assert classify(2, 16) is SparsityClass.HIGH_SPARSE

    def test_boundaries(self):
        assert classify(12, 16) is SparsityClass.DENSE  # 0.75 is not > 0.75
        assert classify(13, 16) is SparsityClass.HIGH_DENSE

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            classify(17, 16)


class TestSortBuffer:
    def test_all_zero_columns_condensed(self):
        buf = SortBuffer(rows=4)
        assert not buf.insert(0, np.zeros(4, dtype=bool))
        assert buf.condensed_columns == 1
        assert len(buf) == 0

    def test_insert_classifies(self):
        buf = SortBuffer(rows=4)
        buf.insert(0, np.array([1, 1, 1, 1], dtype=bool))
        buf.insert(1, np.array([1, 0, 0, 0], dtype=bool))
        counts = buf.class_counts()
        assert counts[SparsityClass.HIGH_DENSE] == 1
        assert counts[SparsityClass.HIGH_SPARSE] == 1

    def test_overflow_to_next_sparser_class(self):
        buf = SortBuffer(rows=4, class_capacity=1)
        dense_col = np.array([1, 1, 1, 1], dtype=bool)
        buf.insert(0, dense_col)
        buf.insert(1, dense_col)  # HIGH_DENSE full -> DENSE
        buf.insert(2, dense_col)  # DENSE full -> SPARSE
        counts = buf.class_counts()
        assert counts[SparsityClass.HIGH_DENSE] == 1
        assert counts[SparsityClass.DENSE] == 1
        assert counts[SparsityClass.SPARSE] == 1

    def test_overflow_lands_in_extra(self):
        buf = SortBuffer(rows=4, class_capacity=1)
        col = np.array([1, 0, 0, 0], dtype=bool)  # HIGH_SPARSE
        buf.insert(0, col)
        buf.insert(1, col)
        assert buf.class_counts()[SparsityClass.EXTRA] == 1

    def test_insert_mask_counts(self, rng):
        mask = Bitmask.random(4, 64, sparsity=0.9, rng=rng)
        buf = SortBuffer(rows=4)
        stored = buf.insert_mask(mask)
        assert stored == len(mask.nonzero_columns())
        assert buf.condensed_columns == len(mask.all_zero_columns())

    def test_drain_sorted_dense_first(self, rng):
        buf = SortBuffer(rows=16)
        sparse_col = np.zeros(16, dtype=bool)
        sparse_col[0] = True
        dense_col = np.ones(16, dtype=bool)
        buf.insert(0, sparse_col)
        buf.insert(1, dense_col)
        entries = buf.drain_sorted()
        assert [e.origin_col for e in entries] == [1, 0]

    def test_drain_empties_buffer(self, rng):
        buf = SortBuffer(rows=4)
        buf.insert(0, np.array([1, 0, 0, 0], dtype=bool))
        buf.drain_sorted()
        assert len(buf) == 0

    def test_rejects_bad_occupancy_shape(self):
        buf = SortBuffer(rows=4)
        with pytest.raises(ValueError):
            buf.insert(0, np.zeros(5, dtype=bool))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            SortBuffer(rows=0)
        with pytest.raises(ValueError):
            SortBuffer(rows=4, class_capacity=0)
