"""Unit tests for condensing."""

import numpy as np
import pytest

from repro.core.bitmask import Bitmask
from repro.core.conmerge.condense import condense


class TestCondense:
    def test_removes_all_zero_columns(self):
        mask = Bitmask(np.array([[1, 0, 1], [0, 0, 1]], dtype=bool))
        result = condense(mask)
        np.testing.assert_array_equal(result.kept_columns, [0, 2])
        assert result.removed_cols == 1
        assert result.remaining_ratio == pytest.approx(2 / 3)

    def test_dense_mask_unchanged(self):
        result = condense(Bitmask.dense(4, 5))
        assert result.remaining_ratio == 1.0
        assert result.condensed.cols == 5

    def test_fully_sparse_mask(self):
        mask = Bitmask(np.zeros((4, 5), dtype=bool))
        result = condense(mask)
        assert result.remaining_ratio == 0.0
        assert result.condensed.cols == 0

    def test_condensed_mask_contents(self):
        mask = Bitmask(np.array([[1, 0, 0], [0, 0, 1]], dtype=bool))
        result = condense(mask)
        np.testing.assert_array_equal(
            result.condensed.mask, [[True, False], [False, True]]
        )

    def test_small_rows_condense_well(self, rng):
        """With few rows (MLD: 4 tokens), high sparsity leaves few columns —
        the paper's Fig. 8 MLD case (13.8% remaining)."""
        mask = Bitmask.random(4, 1024, sparsity=0.95, rng=rng)
        result = condense(mask)
        expected = 1.0 - 0.95**4
        assert result.remaining_ratio == pytest.approx(expected, abs=0.05)

    def test_large_rows_condense_poorly(self, rng):
        """With many rows (Stable Diffusion), random sparsity leaves almost
        every column alive — why merging is needed (Fig. 8)."""
        mask = Bitmask.random(1024, 256, sparsity=0.97, rng=rng)
        result = condense(mask)
        assert result.remaining_ratio > 0.9
