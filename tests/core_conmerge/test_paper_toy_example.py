"""The paper's toy hardware model walked end-to-end (Figs. 8, 9, 11).

The toy configuration: 8 input rows, 3-column-wide blocks. Fig. 9 merges
Block0 and Block1 (conflicts at rows R4, R5 relocated to sparse rows with
conflict-vector updates), then merges the result with Block2 (a conflict
whose preferred CV slot is occupied must find another candidate row).
"""

import numpy as np

from repro.core.bitmask import Bitmask
from repro.core.conmerge.blocks import partition_into_blocks
from repro.core.conmerge.condense import condense
from repro.core.conmerge.merge import try_merge


def toy_blocks(mask_grid):
    mask = Bitmask(np.array(mask_grid, dtype=bool))
    return partition_into_blocks(mask, np.arange(mask.cols), width=3)


class TestToyModel:
    def test_condensing_removes_toy_dead_columns(self):
        """Fig. 8: all-sparse columns disappear before blocking."""
        grid = np.zeros((8, 9), dtype=bool)
        grid[0, 0] = grid[3, 2] = grid[5, 4] = True  # columns 1,3,5,... dead
        result = condense(Bitmask(grid))
        assert result.removed_cols == 6
        np.testing.assert_array_equal(result.kept_columns, [0, 2, 4])

    def test_first_merge_relocates_r4_r5(self):
        """Fig. 9 first merge: Block0 and Block1 conflict at rows 4 and 5;
        the conflicting Block1 elements move to sparse rows of the same
        columns and the CV records rows 4 and 5."""
        # Column-aligned conflicts at rows 4 and 5; rows 5/6 free in block0.
        block0_grid = np.zeros((8, 3), dtype=bool)
        block1_grid = np.zeros((8, 3), dtype=bool)
        block0_grid[[0, 2, 4], 0] = True
        block0_grid[[1, 5], 1] = True
        block1_grid[[4, 6], 0] = True  # conflict at (4, col 0)
        block1_grid[[5, 7], 1] = True  # conflict at (5, col 1)
        (b0,) = toy_blocks(block0_grid)
        (b1,) = toy_blocks(block1_grid)
        # Distinct origins for the incoming block.
        for cell_row in b1.cells:
            for i, cell in enumerate(cell_row):
                if cell is not None:
                    cell_row[i] = type(cell)(
                        lane=cell.lane, col_slot=cell.col_slot,
                        input_row=cell.input_row,
                        origin_col=cell.origin_col + 10,
                        buffer_index=0,
                    )
        attempt = try_merge(b0, b1)
        assert attempt.success
        merged = attempt.merged
        merged.validate()
        assert attempt.conflicts_resolved == 2
        relocated_rows = sorted(
            cell.input_row for cell in merged.entries()
            if cell.uses_conflict_line
        )
        assert relocated_rows == [4, 5]
        cv_entries = [v for v in merged.conflict_vector if v is not None]
        assert sorted(cv_entries) == [4, 5]

    def test_second_merge_respects_occupied_cv_slot(self):
        """Fig. 9 second merge: a conflict wanting a lane whose CV already
        carries a different row must relocate to another candidate."""
        base_grid = np.zeros((8, 3), dtype=bool)
        base_grid[[0, 1, 4], 0] = True
        inc1_grid = np.zeros((8, 3), dtype=bool)
        inc1_grid[4, 0] = True  # conflict -> relocate, sets a CV
        inc2_grid = np.zeros((8, 3), dtype=bool)
        inc2_grid[[0, 1], 0] = True  # two more conflicts on column 0

        (base,) = toy_blocks(base_grid)
        (inc1,) = toy_blocks(inc1_grid)
        (inc2,) = toy_blocks(inc2_grid)
        first = try_merge(base, inc1)
        assert first.success
        second = try_merge(first.merged, inc2)
        assert second.success
        merged = second.merged
        merged.validate()
        assert merged.num_origins == 3
        # Every lane carries at most one foreign row (the CV constraint).
        for lane, cv in enumerate(merged.conflict_vector):
            foreign = {
                c.input_row for c in merged.cells[lane] if c is not None
                and c.input_row != lane
            }
            assert len(foreign) <= 1
            if foreign:
                assert cv == foreign.pop()

    def test_third_merge_rejected_by_triple_buffering(self):
        """Only three WMEM buffers exist: a fourth origin cannot merge."""
        grids = []
        for i in range(4):
            grid = np.zeros((8, 3), dtype=bool)
            grid[i, 0] = True
            grids.append(grid)
        blocks = [toy_blocks(g)[0] for g in grids]
        merged = try_merge(blocks[0], blocks[1]).merged
        merged = try_merge(merged, blocks[2]).merged
        assert merged.num_origins == 3
        final = try_merge(merged, blocks[3])
        assert not final.success

    def test_toy_example_element_coverage(self):
        """Whatever the merge path, every element of all three blocks is
        computed exactly once in the merged result."""
        rng = np.random.default_rng(9)
        grids = [rng.random((8, 3)) < 0.25 for _ in range(3)]
        blocks = []
        for i, grid in enumerate(grids):
            mask = Bitmask(grid)
            (block,) = partition_into_blocks(
                mask, np.arange(3) + 10 * i, width=3
            )
            blocks.append(block)
        merged = try_merge(blocks[0], blocks[1])
        if merged.success:
            final = try_merge(merged.merged, blocks[2])
            target = final.merged if final.success else merged.merged
            covered = {(c.input_row, c.origin_col) for c in target.entries()}
            want = set()
            sources = [blocks[0], blocks[1]] + (
                [blocks[2]] if final.success else []
            )
            for block in sources:
                want |= {
                    (c.input_row, c.origin_col) for c in block.entries()
                }
            assert covered == want
