"""Unit tests for conflict-vector / control-map datatypes."""

import pytest

from repro.core.conmerge.vectors import CellAssignment, ControlMap


class TestCellAssignment:
    def test_original_line_when_input_matches_lane(self):
        cell = CellAssignment(lane=3, col_slot=0, input_row=3, origin_col=7,
                              buffer_index=0)
        assert not cell.uses_conflict_line

    def test_conflict_line_when_relocated(self):
        cell = CellAssignment(lane=4, col_slot=0, input_row=3, origin_col=7,
                              buffer_index=1)
        assert cell.uses_conflict_line

    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError, match="triple-buffered"):
            CellAssignment(0, 0, 0, 0, buffer_index=3)

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            CellAssignment(-1, 0, 0, 0, 0)


class TestControlMap:
    def test_from_assignment_original(self):
        cell = CellAssignment(2, 1, 2, 5, 1)
        cm = ControlMap.from_assignment(cell)
        assert cm.i_sw == 0
        assert cm.w_sw == 1
        assert cm.active

    def test_from_assignment_conflict(self):
        cell = CellAssignment(2, 1, 7, 5, 2)
        cm = ControlMap.from_assignment(cell)
        assert cm.i_sw == 1
        assert cm.w_sw == 2

    def test_idle(self):
        assert not ControlMap.idle().active

    def test_rejects_bad_switch_values(self):
        with pytest.raises(ValueError):
            ControlMap(i_sw=2, w_sw=0)
        with pytest.raises(ValueError):
            ControlMap(i_sw=0, w_sw=3)
