"""Unit + property tests for block merging with conflict vectors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.bitmask import Bitmask
from repro.core.conmerge.blocks import TileBlock, partition_into_blocks
from repro.core.conmerge.merge import greedy_merge, try_merge


def block_from_grid(grid, origin_offset=0):
    """Fresh block whose occupancy follows a boolean grid."""
    grid = np.asarray(grid, dtype=bool)
    mask = Bitmask(grid)
    (block,) = partition_into_blocks(
        mask, np.arange(grid.shape[1]) + origin_offset, width=grid.shape[1]
    )
    return block


def positions(block):
    return {(c.input_row, c.origin_col) for c in block.entries()}


class TestTryMergeBasics:
    def test_disjoint_blocks_merge_without_conflicts(self):
        a = block_from_grid([[1, 0], [0, 0]])
        b = block_from_grid([[0, 0], [1, 0]], origin_offset=10)
        attempt = try_merge(a, b)
        assert attempt.success
        assert attempt.conflicts_resolved == 0
        assert attempt.merged.num_origins == 2
        assert positions(attempt.merged) == positions(a) | positions(b)

    def test_conflict_relocated_with_cv(self):
        """Paper Fig. 9: conflicting element moves to a sparse row within
        the same column and the CV records the original input row."""
        a = block_from_grid([[1], [0]])
        b = block_from_grid([[1], [0]], origin_offset=10)
        attempt = try_merge(a, b)
        assert attempt.success
        assert attempt.conflicts_resolved == 1
        merged = attempt.merged
        merged.validate()
        # The relocated element sits on lane 1 but reads input row 0.
        relocated = [c for c in merged.entries() if c.uses_conflict_line]
        assert len(relocated) == 1
        assert relocated[0].input_row == 0
        assert merged.conflict_vector[relocated[0].lane] == 0

    def test_merge_fails_when_no_free_slot(self):
        a = block_from_grid([[1], [1]])
        b = block_from_grid([[1], [0]], origin_offset=10)
        attempt = try_merge(a, b)
        assert not attempt.success
        assert attempt.merged is None
        assert attempt.cycles >= 1

    def test_merge_fails_beyond_three_origins(self):
        a = block_from_grid([[1, 0], [0, 0]])
        a.num_origins = 2
        b = block_from_grid([[0, 1], [0, 0]], origin_offset=10)
        b.num_origins = 2
        attempt = try_merge(a, b)
        assert not attempt.success

    def test_base_not_mutated_on_failure(self):
        a = block_from_grid([[1], [1]])
        before = positions(a)
        b = block_from_grid([[1], [0]], origin_offset=10)
        try_merge(a, b)
        assert positions(a) == before
        assert a.conflict_vector == [None, None]

    def test_rejects_mismatched_dims(self):
        a = TileBlock(rows=2, width=2)
        b = TileBlock(rows=3, width=2)
        with pytest.raises(ValueError):
            try_merge(a, b)

    def test_buffer_indices_shift_for_incoming(self):
        a = block_from_grid([[1, 0]])
        b = block_from_grid([[0, 1]], origin_offset=10)
        merged = try_merge(a, b).merged
        buffers = {c.origin_col: c.buffer_index for c in merged.entries()}
        assert buffers[0] == 0  # base keeps buffer 0
        assert buffers[11] == 1  # incoming uses the next WMEM


class TestCVConstraint:
    def test_lane_reuses_cv_for_same_row(self):
        """Two conflicts needing the same input row can share one lane's CV
        only if they're in different columns."""
        a = block_from_grid([[1, 1], [0, 0], [0, 0]])
        b = block_from_grid([[1, 1], [0, 0], [0, 0]], origin_offset=10)
        attempt = try_merge(a, b)
        assert attempt.success
        merged = attempt.merged
        merged.validate()
        # Both relocated cells need row 0; they may share a lane (one per
        # column) or occupy different lanes with CV = 0.
        for cell in merged.entries():
            if cell.uses_conflict_line:
                assert cell.input_row == 0

    def test_cv_occupied_forces_other_lane(self):
        """Paper Fig. 9 second merge: a CV slot already holding a different
        row cannot serve a new conflict; the CVG finds another candidate."""
        a = block_from_grid([[1], [1], [0], [0]])
        b = block_from_grid([[1], [1], [0], [0]], origin_offset=10)
        attempt = try_merge(a, b)
        assert attempt.success
        merged = attempt.merged
        merged.validate()
        relocated = sorted(
            (c.input_row, c.lane) for c in merged.entries()
            if c.uses_conflict_line
        )
        # Rows 0 and 1 relocated to distinct lanes with distinct CVs.
        assert [r for r, _ in relocated] == [0, 1]
        lanes = [l for _, l in relocated]
        assert len(set(lanes)) == 2


class TestGreedyMerge:
    def test_reduces_block_count(self, rng):
        mask = Bitmask.random(8, 32, sparsity=0.9, rng=rng)
        blocks = partition_into_blocks(mask, np.arange(32), width=8)
        merged, cycles, attempts, successes = greedy_merge(blocks)
        assert len(merged) < len(blocks)
        assert cycles >= attempts  # every attempt costs at least one cycle
        assert successes == len(blocks) - len(merged)

    def test_preserves_all_elements(self, rng):
        mask = Bitmask.random(8, 32, sparsity=0.85, rng=rng)
        blocks = partition_into_blocks(mask, np.arange(32), width=8)
        merged, *_ = greedy_merge(blocks)
        got = set().union(*(positions(b) for b in merged))
        expected = {(int(r), int(c)) for r, c in np.argwhere(mask.mask)}
        assert got == expected

    def test_dense_blocks_cannot_merge(self):
        blocks = [
            block_from_grid(np.ones((4, 4)), origin_offset=i * 4)
            for i in range(3)
        ]
        merged, *_ = greedy_merge(blocks)
        assert len(merged) == 3


# ---------------------------------------------------------------------------
# property-based invariants
# ---------------------------------------------------------------------------
grids = hnp.arrays(
    dtype=bool,
    shape=st.tuples(st.integers(2, 8), st.integers(1, 6)),
)


@given(grids, grids, st.integers(0, 1_000_000))
@settings(max_examples=80, deadline=None)
def test_merge_preserves_elements_and_hw_invariants(grid_a, grid_b, seed):
    """For any two equal-shaped blocks: a successful merge covers exactly
    the union of elements, satisfies the one-conflict-row-per-lane
    constraint, and never exceeds three origins."""
    if grid_a.shape != grid_b.shape:
        rows = min(grid_a.shape[0], grid_b.shape[0])
        cols = min(grid_a.shape[1], grid_b.shape[1])
        grid_a = grid_a[:rows, :cols]
        grid_b = grid_b[:rows, :cols]
    a = block_from_grid(grid_a)
    b = block_from_grid(grid_b, origin_offset=1000)
    attempt = try_merge(a, b)
    if attempt.success:
        merged = attempt.merged
        merged.validate()
        assert positions(merged) == positions(a) | positions(b)
        assert merged.num_origins == 2
        # No duplicated physical cells.
        assert merged.num_elements == a.num_elements + b.num_elements
