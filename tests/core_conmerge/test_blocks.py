"""Unit tests for tile blocks."""

import numpy as np
import pytest

from repro.core.bitmask import Bitmask
from repro.core.conmerge.blocks import TileBlock, partition_into_blocks
from repro.core.conmerge.vectors import CellAssignment


class TestTileBlock:
    def test_empty_block(self):
        block = TileBlock(rows=4, width=3)
        assert block.num_elements == 0
        assert block.utilization == 0.0
        assert block.origin_columns() == set()

    def test_from_column(self):
        block = TileBlock.from_column(
            np.array([True, False, True]), origin_col=9, width=2
        )
        assert block.num_elements == 2
        assert block.origin_columns() == {9}
        assert all(c.input_row == c.lane for c in block.entries())

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            TileBlock(rows=0, width=3)

    def test_occupancy_grid(self):
        block = TileBlock.from_column(np.array([True, False]), 0, width=2)
        grid = block.occupancy()
        np.testing.assert_array_equal(grid, [[True, False], [False, False]])

    def test_control_maps_shape_and_idle(self):
        block = TileBlock.from_column(np.array([True, False]), 0, width=2)
        maps = block.control_maps()
        assert len(maps) == 2 and len(maps[0]) == 2
        assert maps[0][0].active
        assert not maps[1][1].active

    def test_copy_is_deep(self):
        block = TileBlock.from_column(np.array([True, False]), 0, width=2)
        clone = block.copy()
        clone.cells[0][0] = None
        assert block.num_elements == 1

    def test_validate_accepts_fresh_block(self):
        block = TileBlock.from_column(np.array([True, True]), 0, width=1)
        block.validate()

    def test_validate_rejects_cv_mismatch(self):
        block = TileBlock(rows=2, width=1)
        block.cells[0][0] = CellAssignment(
            lane=0, col_slot=0, input_row=1, origin_col=0, buffer_index=1
        )
        # Conflict vector not set for the foreign row.
        with pytest.raises(ValueError, match="conflict vector"):
            block.validate()

    def test_validate_rejects_two_foreign_rows_per_lane(self):
        block = TileBlock(rows=3, width=2)
        block.cells[0][0] = CellAssignment(0, 0, 1, 5, 1)
        block.cells[0][1] = CellAssignment(0, 1, 2, 6, 1)
        block.conflict_vector[0] = 1
        with pytest.raises(ValueError, match="conflict rows"):
            block.validate()

    def test_validate_rejects_too_many_origins(self):
        block = TileBlock(rows=2, width=1, num_origins=4)
        with pytest.raises(ValueError, match="3 origins"):
            block.validate()


class TestPartition:
    def test_partition_counts(self, rng):
        mask = Bitmask.random(8, 10, 0.5, rng)
        blocks = partition_into_blocks(mask, np.arange(10), width=4)
        assert len(blocks) == 3  # ceil(10 / 4)

    def test_partition_preserves_elements(self, rng):
        mask = Bitmask.random(8, 10, 0.5, rng)
        blocks = partition_into_blocks(mask, np.arange(10), width=4)
        positions = {
            (c.input_row, c.origin_col)
            for b in blocks
            for c in b.entries()
        }
        expected = {(int(r), int(c)) for r, c in np.argwhere(mask.mask)}
        assert positions == expected

    def test_partition_with_origin_mapping(self, rng):
        """Origin indices may differ from positional indices (condensed)."""
        mask = Bitmask(np.array([[1, 1], [0, 1]], dtype=bool))
        origins = np.array([5, 9])
        blocks = partition_into_blocks(mask, origins, width=4)
        assert blocks[0].origin_columns() == {5, 9}
