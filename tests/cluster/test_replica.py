"""Service-time model and replica dispatch mechanics (sim time only)."""

import pytest

from repro.cluster.replica import (
    Replica,
    ServiceTimeModel,
    make_accelerator,
)
from repro.cluster.traffic import ClusterRequest
from repro.serve.scheduler import BatchingPolicy


def request(at, model="dit", seed=0, ablation="all"):
    return ClusterRequest(arrival_s=at, model=model, seed=seed,
                          class_label=1, ablation=ablation)


@pytest.fixture(scope="module")
def service_model():
    return ServiceTimeModel("exion24")


class TestServiceTimeModel:
    def test_accelerator_resolution(self):
        assert make_accelerator("exion4").name == "EXION4"
        with pytest.raises(KeyError):
            make_accelerator("tpu")

    def test_latencies_positive_and_batch_monotone(self, service_model):
        lat1 = service_model.latency_s("dit", "all", 1)
        lat8 = service_model.latency_s("dit", "all", 8)
        assert 0.0 < lat1 < lat8
        # Batching amortizes: per-sample time shrinks with batch size.
        assert lat8 / 8 < lat1

    def test_ablation_changes_latency(self, service_model):
        assert service_model.latency_s("dit", "base", 1) > (
            service_model.latency_s("dit", "all", 1)
        )
        with pytest.raises(ValueError):
            service_model.latency_s("dit", "everything", 1)

    def test_memoized(self, service_model):
        first = service_model.latency_s("dit", "all", 4)
        assert service_model.latency_s("dit", "all", 4) is not None
        assert ("dit", "all", 4) in service_model._latencies
        assert first == service_model.latency_s("dit", "all", 4)

    def test_edge_accelerator_is_slower(self):
        edge = ServiceTimeModel("exion4")
        server = ServiceTimeModel("exion24")
        assert edge.latency_s("dit", "all", 1) > (
            server.latency_s("dit", "all", 1)
        )


class TestReplica:
    def make_replica(self, service_model, **kwargs):
        kwargs.setdefault("policy", BatchingPolicy(max_batch_size=4))
        return Replica(index=0, service_model=service_model, **kwargs)

    def test_enqueue_and_greedy_dispatch(self, service_model):
        replica = self.make_replica(service_model)
        assert replica.enqueue(request(0.0, seed=1), now=0.0)
        assert replica.enqueue(request(0.0, seed=2), now=0.0)
        assert replica.queue_depth() == 2
        assert replica.next_event_time(0.0) == 0.0

        outcome = replica.try_dispatch(0.0)
        assert outcome is not None and outcome.batch_size == 2
        assert outcome.service_s > 0.0
        assert replica.busy_until == pytest.approx(outcome.completion_s)
        assert replica.queue_depth() == 0
        # Busy with nothing pending: no further wake-up needed.
        assert replica.next_event_time(0.0) is None
        # And no double dispatch while busy.
        replica.enqueue(request(0.0, seed=3), now=0.0)
        assert replica.try_dispatch(0.0) is None
        assert replica.next_event_time(0.0) == replica.busy_until

    def test_cold_start_paid_once_per_key(self, service_model):
        replica = self.make_replica(service_model)
        replica.enqueue(request(0.0, seed=1), now=0.0)
        first = replica.try_dispatch(0.0)
        replica.enqueue(request(0.0, seed=2), now=first.completion_s)
        second = replica.try_dispatch(first.completion_s)
        base = service_model.latency_s("dit", "all", 1)
        assert second.service_s == pytest.approx(base)
        assert first.service_s == pytest.approx(
            base + service_model.calibration_s("dit")
        )
        assert replica.cold_starts == 1
        assert replica.is_warm(("dit", "all"))
        assert not replica.is_warm(("mld", "all"))

    def test_admission_control(self, service_model):
        replica = self.make_replica(service_model)
        assert replica.enqueue(request(0.0), now=0.0, max_queue_depth=1)
        assert not replica.enqueue(request(0.0), now=0.0, max_queue_depth=1)
        assert replica.admission_drops == 1

    def test_timeout_expiry(self, service_model):
        replica = self.make_replica(
            service_model,
            policy=BatchingPolicy(max_batch_size=4, max_wait_s=10.0),
        )
        replica.enqueue(request(0.0, seed=1), now=0.0)
        replica.enqueue(request(5.0, seed=2), now=5.0)
        dropped = replica.expire(6.0, timeout_s=2.0)
        assert len(dropped) == 1
        assert dropped[0].reason == "timeout"
        assert dropped[0].waited_s == pytest.approx(6.0)
        assert replica.timeout_drops == 1
        assert replica.queue_depth() == 1
        assert replica.expire(6.0, timeout_s=None) == []

    def test_fully_expired_unwarmed_key_loses_affinity(self, service_model):
        replica = self.make_replica(
            service_model,
            policy=BatchingPolicy(max_batch_size=4, max_wait_s=10.0),
        )
        replica.enqueue(request(0.0, model="mld"), now=0.0)
        assert replica.is_warm(("mld", "all"))
        # Every queued mld request times out before any batch dispatched:
        # the advertised warmth was never realized.
        assert len(replica.expire(5.0, timeout_s=1.0)) == 1
        assert not replica.is_warm(("mld", "all"))

    def test_expired_key_stays_warm_after_a_dispatch(self, service_model):
        replica = self.make_replica(service_model)
        replica.enqueue(request(0.0, seed=1), now=0.0)
        first = replica.try_dispatch(0.0)  # cold start actually paid
        later = first.completion_s
        replica.enqueue(request(later, seed=2), now=later)
        replica.expire(later + 9.0, timeout_s=1.0)
        # The cache genuinely holds the key; expiry must not unmark it.
        assert replica.is_warm(("dit", "all"))

    def test_max_wait_schedules_future_fire(self, service_model):
        replica = self.make_replica(
            service_model,
            policy=BatchingPolicy(max_batch_size=4, max_wait_s=2.0),
        )
        replica.enqueue(request(1.0), now=1.0)
        assert replica.try_dispatch(1.5) is None  # not due yet
        assert replica.next_event_time(1.5) == pytest.approx(3.0)
        outcome = replica.try_dispatch(3.0)
        assert outcome is not None and outcome.batch_size == 1

    def test_multi_model_fifo_across_servers(self, service_model):
        replica = self.make_replica(
            service_model,
            policy=BatchingPolicy(max_batch_size=4, max_wait_s=0.0),
        )
        replica.enqueue(request(0.0, model="mld"), now=0.0)
        replica.enqueue(request(1.0, model="dit"), now=1.0)
        outcome = replica.try_dispatch(2.0)
        # The mld head waited longer, so its server dispatches first.
        assert outcome.model == "mld"
