"""Routing policy decisions over stub replicas (pure logic, no serving)."""

import pytest

from repro.cluster.router import (
    CacheAffinityRouter,
    JoinShortestQueueRouter,
    RoundRobinRouter,
    make_router,
)
from repro.cluster.traffic import ClusterRequest


class StubReplica:
    """Just enough surface for routing decisions."""

    def __init__(self, index, load=0, warm=()):
        self.index = index
        self._load = load
        self.warm_keys = set(warm)

    def load(self, now):
        return self._load

    def is_warm(self, key):
        return key in self.warm_keys


def req(model="dit", ablation="all"):
    return ClusterRequest(arrival_s=0.0, model=model, ablation=ablation)


class TestMakeRouter:
    def test_known_names(self):
        assert isinstance(make_router("round_robin"), RoundRobinRouter)
        assert isinstance(make_router("jsq"), JoinShortestQueueRouter)
        assert isinstance(make_router("cache_affinity"), CacheAffinityRouter)
        with pytest.raises(KeyError):
            make_router("random")


class TestRoundRobin:
    def test_cycles_regardless_of_load(self):
        replicas = [StubReplica(i, load=i * 10) for i in range(3)]
        router = RoundRobinRouter()
        picks = [router.choose(req(), replicas, 0.0).index for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]


class TestJoinShortestQueue:
    def test_picks_least_loaded(self):
        replicas = [
            StubReplica(0, load=5),
            StubReplica(1, load=2),
            StubReplica(2, load=9),
        ]
        router = JoinShortestQueueRouter()
        assert router.choose(req(), replicas, 0.0).index == 1

    def test_tie_breaks_on_index(self):
        replicas = [StubReplica(0, load=3), StubReplica(1, load=3)]
        assert JoinShortestQueueRouter().choose(
            req(), replicas, 0.0
        ).index == 0


class TestCacheAffinity:
    def test_prefers_warm_replica(self):
        replicas = [
            StubReplica(0, load=0),
            StubReplica(1, load=3, warm={("dit", "all")}),
        ]
        router = CacheAffinityRouter(max_imbalance=8)
        assert router.choose(req(), replicas, 0.0).index == 1

    def test_falls_back_to_jsq_when_warm_overloaded(self):
        replicas = [
            StubReplica(0, load=0),
            StubReplica(1, load=20, warm={("dit", "all")}),
        ]
        router = CacheAffinityRouter(max_imbalance=8)
        assert router.choose(req(), replicas, 0.0).index == 0

    def test_cold_key_joins_shortest_queue(self):
        replicas = [
            StubReplica(0, load=4),
            StubReplica(1, load=1, warm={("dit", "all")}),
        ]
        router = CacheAffinityRouter()
        assert router.choose(req(model="mld"), replicas, 0.0).index == 1

    def test_warm_ties_break_on_index(self):
        warm = {("dit", "all")}
        replicas = [
            StubReplica(0, load=2, warm=warm),
            StubReplica(1, load=2, warm=warm),
        ]
        assert CacheAffinityRouter().choose(req(), replicas, 0.0).index == 0

    def test_rejects_negative_imbalance(self):
        with pytest.raises(ValueError):
            CacheAffinityRouter(max_imbalance=-1)
