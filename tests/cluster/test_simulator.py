"""End-to-end fleet simulation: conservation, scaling, determinism."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSimulator,
    PoissonProcess,
    ServiceTimeModel,
    SLOPolicy,
    build_replicas,
    make_router,
    simulate_cluster,
    synthesize_trace,
)
from repro.serve.scheduler import BatchingPolicy

POLICY = BatchingPolicy(max_batch_size=8, max_wait_s=0.0)


@pytest.fixture(scope="module")
def service_model():
    return ServiceTimeModel("exion24")


def run_fleet(service_model, n=64, replicas=2, router="jsq", rate=200.0,
              slo=None, seed=0, **replica_kwargs):
    trace = synthesize_trace(PoissonProcess(rate), n, rng=seed)
    fleet = build_replicas(replicas, policy=POLICY,
                           service_model=service_model, **replica_kwargs)
    return simulate_cluster(trace, replicas=fleet,
                            router=make_router(router), slo=slo)


class TestConservation:
    def test_every_request_served_or_dropped(self, service_model):
        report = run_fleet(service_model, n=50, replicas=3)
        assert report.submitted == 50
        assert report.served + report.dropped == 50
        assert report.latency["count"] == report.served
        assert sum(r["requests_served"] for r in report.replicas) == (
            report.served
        )

    def test_makespan_covers_all_completions(self, service_model):
        report = run_fleet(service_model, n=40)
        assert report.makespan_s > 0.0
        for usage in report.replicas:
            assert usage["busy_s"] <= report.makespan_s + 1e-9
            assert 0.0 <= usage["utilization"] <= 1.0

    def test_stale_max_wait_check_does_not_inflate_makespan(
        self, service_model
    ):
        # A batch that fills before its max-wait deadline leaves a stale
        # wake-up in the heap; its pop time must not count as makespan.
        from repro.cluster.traffic import ClusterRequest
        from repro.serve.scheduler import BatchingPolicy

        policy = BatchingPolicy(max_batch_size=2, max_wait_s=10.0)
        requests = [
            ClusterRequest(arrival_s=0.0, model="dit", seed=0),
            ClusterRequest(arrival_s=0.5, model="dit", seed=1),
        ]
        report = simulate_cluster(
            requests,
            replicas=build_replicas(1, policy=policy,
                                    service_model=service_model),
            router=make_router("jsq"),
        )
        assert report.served == 2
        # Batch dispatches at t=0.5; makespan is its completion, far
        # below the 10 s max-wait deadline.
        assert report.makespan_s < 2.0
        # Without the fix utilization reads ~4% (busy 0.86 s over a 10 s
        # phantom makespan); correctly it is busy-over-completion.
        assert report.replicas[0]["utilization"] > 0.3

    def test_build_replicas_forwards_seeds(self, service_model):
        fleet = build_replicas(2, service_model=service_model,
                               model_seed=7, calibration_seed=3)
        assert all(r.model_seed == 7 for r in fleet)
        assert all(r.calibration_seed == 3 for r in fleet)

    def test_empty_trace(self, service_model):
        report = simulate_cluster(
            [], replicas=build_replicas(2, policy=POLICY,
                                        service_model=service_model),
            router=make_router("jsq"),
        )
        assert report.submitted == report.served == 0
        assert report.samples_per_s == 0.0

    def test_requires_replicas(self):
        with pytest.raises(ValueError):
            ClusterSimulator([], make_router("jsq"))


class TestScaling:
    def test_four_replicas_scale_throughput(self, service_model):
        one = run_fleet(service_model, n=96, replicas=1, rate=400.0)
        four = run_fleet(service_model, n=96, replicas=4, rate=400.0)
        assert four.samples_per_s / one.samples_per_s >= 3.0
        # More capacity also cuts the tail.
        assert four.latency["latency_p99_s"] < one.latency["latency_p99_s"]

    def test_scenario_fingerprint(self, service_model):
        report = run_fleet(service_model, replicas=2, router="round_robin")
        assert report.scenario["router"] == "round_robin"
        assert report.scenario["replicas"] == 2
        assert report.scenario["accelerator"] == "EXION24"
        assert report.scenario["models"] == ["dit"]
        assert report.scenario["policy"]["max_batch_size"] == 8


class TestDeterminism:
    def test_same_seed_byte_identical_json(self):
        # Fresh service models on purpose: memoization state must not
        # leak into the published report.
        a = run_fleet(ServiceTimeModel("exion24"), n=80, replicas=3,
                      router="cache_affinity", seed=11)
        b = run_fleet(ServiceTimeModel("exion24"), n=80, replicas=3,
                      router="cache_affinity", seed=11)
        assert a.to_json() == b.to_json()

    def test_different_seed_differs(self, service_model):
        a = run_fleet(service_model, n=30, seed=1)
        b = run_fleet(service_model, n=30, seed=2)
        assert a.to_json() != b.to_json()


class TestSLOEnforcement:
    def test_admission_and_timeout_drops(self, service_model):
        slo = SLOPolicy(latency_target_s=0.5, timeout_s=1.0,
                        max_queue_depth=6)
        report = run_fleet(service_model, n=80, replicas=1, rate=500.0,
                           slo=slo)
        assert report.admission_drops > 0
        assert report.served + report.dropped == 80
        assert report.slo_attainment is not None
        # Timeouts bound the worst queue wait that still got served.
        assert report.latency["wait_p99_s"] <= 1.0 + 1e-9

    def test_stale_queue_drops_count_as_timeouts_not_admission(self):
        # A queue full of already-expired waiters must not cause
        # admission rejections: arrivals sweep expiry fleet-wide first.
        from repro.cluster.traffic import ClusterRequest

        slow = ServiceTimeModel("exion4")  # long batches, easy overload
        requests = [
            ClusterRequest(arrival_s=0.001 * i, model="dit", seed=i)
            for i in range(12)
        ]
        slo = SLOPolicy(timeout_s=0.5, max_queue_depth=12)
        report = simulate_cluster(
            requests,
            replicas=build_replicas(1, policy=POLICY, service_model=slow),
            router=make_router("jsq"),
            slo=slo,
        )
        # The first batch occupies the replica far past every queued
        # request's timeout; the stale waiters are timeout drops and the
        # never-exceeded depth bound produces no admission drops.
        assert report.admission_drops == 0
        assert report.timeout_drops > 0
        assert report.served + report.dropped == 12

    def test_timeout_fires_at_its_deadline_not_at_max_wait(self, service_model):
        # A lone request with timeout < max_wait must be dropped at the
        # timeout instant: the expiry deadline is a wake-up of its own,
        # so the makespan is ~timeout_s, not max_wait_s.
        from repro.cluster.traffic import ClusterRequest
        from repro.serve.scheduler import BatchingPolicy

        policy = BatchingPolicy(max_batch_size=8, max_wait_s=5.0)
        report = simulate_cluster(
            [ClusterRequest(arrival_s=0.0, model="dit", seed=0)],
            replicas=build_replicas(1, policy=policy,
                                    service_model=service_model),
            router=make_router("jsq"),
            slo=SLOPolicy(timeout_s=1.0),
        )
        assert report.timeout_drops == 1
        assert report.served == 0
        assert report.makespan_s == pytest.approx(1.0, abs=1e-6)

    def test_epoch_scale_timestamps_terminate(self, service_model):
        # Replayed traces can carry absolute (epoch-scale) arrival
        # instants, where a fixed 1e-9 bump would vanish below the float
        # ulp; the nextafter guard must still guarantee progress.
        from repro.cluster.traffic import ClusterRequest
        from repro.serve.scheduler import BatchingPolicy

        t0 = 1.75e9
        policy = BatchingPolicy(max_batch_size=8, max_wait_s=5.0)
        report = simulate_cluster(
            [ClusterRequest(arrival_s=t0, model="dit", seed=0)],
            replicas=build_replicas(1, policy=policy,
                                    service_model=service_model),
            router=make_router("jsq"),
            slo=SLOPolicy(timeout_s=1.0),
        )
        assert report.timeout_drops == 1
        assert report.makespan_s == pytest.approx(t0 + 1.0)

    def test_no_slo_means_no_drops(self, service_model):
        report = run_fleet(service_model, n=60, replicas=1, rate=500.0)
        assert report.dropped == 0
        assert report.slo_attainment is None


class TestExecuteMode:
    def test_executed_results_match_sequential_generation(self):
        from repro.core.config import ExionConfig
        from repro.core.pipeline import ExionPipeline
        from repro.models.zoo import build_model

        iterations = 6
        trace = synthesize_trace(PoissonProcess(50.0), 5, rng=4)
        fleet = build_replicas(
            1, policy=POLICY, service_model=ServiceTimeModel("exion24"),
            execute=True, execute_iterations=iterations,
        )
        report = simulate_cluster(trace, replicas=fleet,
                                  router=make_router("jsq"))
        assert report.executed
        assert report.served == 5

        server = fleet[0].servers[("dit", "all")]
        model = build_model("dit", seed=0, total_iterations=iterations)
        pipeline = ExionPipeline(model, ExionConfig.for_model("dit"))
        served = sorted(server.results.values(),
                        key=lambda r: r.request_id)
        assert len(served) == 5
        for record, request in zip(
            served, sorted(trace, key=lambda r: r.arrival_s)
        ):
            want = pipeline.generate(seed=request.seed,
                                     class_label=request.class_label)
            assert np.array_equal(record.result.sample, want.sample)
            # Timing still comes from the hw model, not wall clock.
            assert record.service_s > 0.0
        assert server.report().timing_source == "simulated"
