"""Arrival processes, workload mixes and trace files."""

import numpy as np
import pytest

from repro.cluster.traffic import (
    ClusterRequest,
    DiurnalProcess,
    MMPPProcess,
    PoissonProcess,
    TraceProcess,
    WorkloadMix,
    load_trace,
    save_trace,
    synthesize_trace,
)


class TestArrivalProcesses:
    def test_poisson_rate_and_monotonicity(self):
        times = PoissonProcess(rate_rps=100.0).times(
            2000, np.random.default_rng(0)
        )
        assert all(b > a for a, b in zip(times, times[1:]))
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(0.01, rel=0.1)

    def test_poisson_deterministic_per_seed(self):
        p = PoissonProcess(rate_rps=10.0)
        assert p.times(50, 7) == p.times(50, 7)
        assert p.times(50, 7) != p.times(50, 8)

    def test_poisson_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonProcess(rate_rps=0.0)

    def test_mmpp_is_burstier_than_poisson(self):
        # Squared coefficient of variation of inter-arrival gaps: 1 for
        # Poisson, > 1 for a two-state MMPP with well-separated rates.
        n = 4000
        mmpp = MMPPProcess(rate_low_rps=5.0, rate_high_rps=200.0,
                           mean_dwell_s=2.0)
        times = mmpp.times(n, np.random.default_rng(1))
        gaps = np.diff([0.0] + times)
        cv2 = gaps.var() / gaps.mean() ** 2
        assert cv2 > 1.5

    def test_diurnal_rate_oscillates(self):
        proc = DiurnalProcess(base_rate_rps=10.0, peak_rate_rps=100.0,
                              period_s=10.0)
        assert proc.rate_at(0.0) == pytest.approx(10.0)
        assert proc.rate_at(5.0) == pytest.approx(100.0)
        assert proc.rate_at(10.0) == pytest.approx(10.0)
        times = proc.times(500, np.random.default_rng(2))
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_trace_process_replays_sorted_prefix(self):
        proc = TraceProcess([3.0, 1.0, 2.0])
        assert proc.times(2, 0) == [1.0, 2.0]
        with pytest.raises(ValueError):
            proc.times(4, 0)


class TestWorkloadMix:
    def test_validates_models_eagerly(self):
        with pytest.raises(KeyError):
            WorkloadMix(models=("resnet50",))
        with pytest.raises(ValueError):
            WorkloadMix(models=())
        with pytest.raises(ValueError):
            WorkloadMix(models=("dit",), weights=(1.0, 2.0))

    def test_weighted_sampling(self):
        mix = WorkloadMix(models=("dit", "mld"), weights=(3.0, 1.0))
        requests = synthesize_trace(
            PoissonProcess(100.0), 400, mix=mix, rng=0
        )
        share = sum(r.model == "dit" for r in requests) / len(requests)
        assert share == pytest.approx(0.75, abs=0.08)


class TestSynthesizeAndTraceFiles:
    def test_deterministic_per_seed(self):
        proc = PoissonProcess(50.0)
        assert synthesize_trace(proc, 20, rng=3) == synthesize_trace(
            proc, 20, rng=3
        )
        assert synthesize_trace(proc, 20, rng=3) != synthesize_trace(
            proc, 20, rng=4
        )

    def test_requests_carry_generation_inputs(self):
        request = synthesize_trace(PoissonProcess(10.0), 1, rng=0)[0]
        assert request.model == "dit"
        assert request.ablation == "all"
        assert request.class_label is not None
        assert request.pipeline_key == ("dit", "all")

    def test_rejects_negative_arrival(self):
        with pytest.raises(ValueError):
            ClusterRequest(arrival_s=-1.0, model="dit")

    def test_save_load_round_trip(self, tmp_path):
        requests = synthesize_trace(
            PoissonProcess(25.0), 12,
            mix=WorkloadMix(models=("dit", "mld")), rng=9,
        )
        path = tmp_path / "trace.jsonl"
        save_trace(path, requests)
        assert load_trace(path) == sorted(
            requests, key=lambda r: r.arrival_s
        )
