"""SLO accounting primitives and the ClusterReport contract."""

import json

import pytest

from repro.cluster.report import ClusterReport
from repro.cluster.slo import LatencyAccumulator, SLOPolicy, percentile


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == 50.0
        assert percentile(values, 95) == 95.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0
        assert percentile(values, 0) == 1.0

    def test_small_samples_and_empty(self):
        assert percentile([3.0], 99) == 3.0
        assert percentile([2.0, 1.0], 50) == 1.0  # sorts internally
        assert percentile([], 50) == 0.0
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestSLOPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            SLOPolicy(latency_target_s=0.0)
        with pytest.raises(ValueError):
            SLOPolicy(timeout_s=-1.0)
        with pytest.raises(ValueError):
            SLOPolicy(max_queue_depth=0)

    def test_attainment(self):
        acc = LatencyAccumulator(SLOPolicy(latency_target_s=1.0))
        acc.record(wait_s=0.2, service_s=0.3)  # 0.5 within
        acc.record(wait_s=0.9, service_s=0.5)  # 1.4 blown
        assert acc.attainment() == pytest.approx(0.5)
        assert LatencyAccumulator().attainment() is None

    def test_attainment_counts_drops_as_misses(self):
        # Shedding load must never *raise* attainment: dropped requests
        # join the denominator as violations.
        acc = LatencyAccumulator(SLOPolicy(latency_target_s=1.0))
        acc.record(wait_s=0.1, service_s=0.2)  # within
        assert acc.attainment(dropped=0) == pytest.approx(1.0)
        assert acc.attainment(dropped=3) == pytest.approx(0.25)
        empty = LatencyAccumulator(SLOPolicy(latency_target_s=1.0))
        assert empty.attainment(dropped=5) == pytest.approx(0.0)

    def test_summary_breakdown(self):
        acc = LatencyAccumulator()
        acc.record(wait_s=1.0, service_s=2.0)
        acc.record(wait_s=3.0, service_s=4.0)
        summary = acc.summary()
        assert summary["count"] == 2
        assert summary["latency_mean_s"] == pytest.approx(5.0)
        assert summary["wait_mean_s"] == pytest.approx(2.0)
        assert summary["service_mean_s"] == pytest.approx(3.0)
        assert summary["latency_max_s"] == pytest.approx(7.0)


def sample_report():
    acc = LatencyAccumulator(SLOPolicy(latency_target_s=1.0))
    for i in range(10):
        acc.record(wait_s=0.05 * i, service_s=0.4)
    return ClusterReport(
        scenario={"router": "jsq", "accelerator": "EXION24",
                  "models": ["dit"], "seed": 0},
        submitted=12,
        served=10,
        admission_drops=1,
        timeout_drops=1,
        makespan_s=5.0,
        latency=acc.summary(),
        slo_attainment=acc.attainment(),
        replicas=[{
            "name": "replica0", "accelerator": "EXION24",
            "requests_served": 10, "batches_served": 3,
            "mean_batch_size": 10 / 3, "busy_s": 4.0,
            "utilization": 0.8, "cold_starts": 1,
            "admission_drops": 1, "timeout_drops": 1,
        }],
    )


class TestClusterReport:
    def test_derived_quantities(self):
        report = sample_report()
        assert report.dropped == 2
        assert report.drop_rate == pytest.approx(2 / 12)
        assert report.samples_per_s == pytest.approx(2.0)
        assert report.mean_utilization == pytest.approx(0.8)

    def test_dict_round_trip(self):
        report = sample_report()
        again = ClusterReport.from_dict(report.to_dict())
        assert again.to_dict() == report.to_dict()

    def test_canonical_json_is_byte_stable(self):
        a, b = sample_report(), sample_report()
        assert a.to_json() == b.to_json()
        data = json.loads(a.to_json())
        assert data["served"] == 10
        # Canonical form: key-sorted, no whitespace, newline-terminated.
        assert a.to_json().endswith("\n")
        assert '"samples_per_s":2.0' in a.to_json()

    def test_render_mentions_scenario(self):
        text = sample_report().render()
        assert "jsq" in text and "EXION24" in text
        assert "Per-replica usage" in text
        assert "SLO attainment" in text

    def test_bench_projection_round_trips_schema(self):
        from repro.bench import BenchResult, validate_result

        result = sample_report().to_bench_result("cluster_sample")
        data = result.to_dict()
        validate_result(data)  # raises on schema drift
        again = BenchResult.from_dict(data)
        assert again.value("samples_per_s") == pytest.approx(2.0)
        assert again.metric("latency_p99_s").direction == "lower_better"
        assert again.value("slo_attainment") == pytest.approx(1.0)
