"""Cluster-layer tests of continuous batching: tick pricing, the
continuous replica's event-loop contract, and the trace schema the
multi-tenant scheduler consumes.

The load-bearing fact is the additivity of
:meth:`ServiceTimeModel.tick_latency_s`: whole-generation latencies from
the hardware walk must decompose exactly into one cold tick plus priced
dense/sparse steady-state ticks, because the continuous replica bills
simulated time per tick while the drain replica bills per generation —
any pricing drift would make the two modes incomparable.
"""

import pytest

from repro.cluster import (
    ClusterRequest,
    ContinuousReplica,
    MMPPProcess,
    PoissonProcess,
    Replica,
    ServiceTimeModel,
    SLOPolicy,
    WorkloadMix,
    build_replicas,
    load_trace,
    make_router,
    save_trace,
    simulate_cluster,
    synthesize_trace,
)
from repro.core.config import ExionConfig
from repro.core.ffn_reuse import schedule_phases
from repro.serve import BatchingPolicy, ContinuousPolicy
from repro.workloads.specs import get_spec


# ----------------------------------------------------------------------
# per-tick pricing
# ----------------------------------------------------------------------
class TestTickPricing:
    @pytest.mark.parametrize("batch_size", [1, 4, 8])
    @pytest.mark.parametrize("ablation", ["base", "all"])
    def test_ticks_sum_to_generation_latency(self, ablation, batch_size):
        """cold + (D-1) dense + S sparse == the whole-generation price."""
        stm = ServiceTimeModel("exion4")
        model = "dit"
        iterations = get_spec(model).total_iterations
        config = ExionConfig.for_model(model).ablation(ablation)
        sparse_n = config.sparse_iters_n if config.enable_ffn_reuse else 0
        flags = schedule_phases(iterations, sparse_n)
        dense, sparse = sum(flags), len(flags) - sum(flags)

        total = (
            stm.tick_latency_s(model, ablation, batch_size, "cold")
            + (dense - 1)
            * stm.tick_latency_s(model, ablation, batch_size, "dense")
            + sparse
            * stm.tick_latency_s(model, ablation, batch_size, "sparse")
        )
        assert total == pytest.approx(
            stm.latency_s(model, ablation, batch_size), rel=1e-6
        )

    def test_without_ffn_reuse_every_tick_is_dense(self):
        stm = ServiceTimeModel("exion4")
        dense = stm.tick_latency_s("dit", "base", 1, "dense")
        sparse = stm.tick_latency_s("dit", "base", 1, "sparse")
        assert dense == sparse  # no sparse phase exists; one uniform price

    def test_sparse_tick_cheaper_than_dense(self):
        """The point of FFN-Reuse: riding the compiled phase costs less
        than recompiling it."""
        stm = ServiceTimeModel("exion4")
        assert stm.tick_latency_s("dit", "all", 1, "sparse") < (
            stm.tick_latency_s("dit", "all", 1, "dense")
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            ServiceTimeModel("exion4").tick_latency_s("dit", "all", 1, "warm")


# ----------------------------------------------------------------------
# fleet wiring
# ----------------------------------------------------------------------
def _trace(n=20, deadline_s=7.0):
    return synthesize_trace(
        MMPPProcess(0.8, 4.0, 5.0),
        n,
        mix=WorkloadMix(models=("dit",), ablation="all"),
        rng=0,
        deadline_s=deadline_s,
        tenants=("a", "b"),
    )


def _simulate(continuous):
    stm = ServiceTimeModel("exion4")
    if continuous:
        policy = ContinuousPolicy(max_batch_size=4)
    else:
        policy = BatchingPolicy(max_batch_size=4, max_wait_s=0.0)
    return simulate_cluster(
        _trace(),
        replicas=build_replicas(
            1, policy=policy, service_model=stm, continuous=continuous,
            tenant_weights={"a": 2.0, "b": 1.0} if continuous else None,
        ),
        router=make_router("round_robin"),
        slo=SLOPolicy(latency_target_s=7.0),
        scenario={"seed": 0},
    )


class TestContinuousFleet:
    def test_requests_conserved_and_usage_extended(self):
        report = _simulate(continuous=True)
        drops = report.admission_drops + report.timeout_drops
        assert report.served + drops == report.submitted
        usage = report.replicas[0]
        # Drain-compatible keys stay, continuous counters appear.
        for key in ("requests_served", "busy_s", "utilization", "ticks",
                    "mean_occupancy", "joins", "preemptions",
                    "deadline_evictions"):
            assert key in usage
        assert usage["ticks"] > 0
        assert usage["mean_occupancy"] > 0.0

    def test_fleet_is_deterministic(self):
        assert _simulate(True).to_json() == _simulate(True).to_json()

    def test_policy_docs_identify_the_mode(self):
        continuous = build_replicas(
            1, policy=ContinuousPolicy(max_batch_size=4, quantum=2.0),
            service_model=ServiceTimeModel("exion4"), continuous=True,
        )[0]
        assert isinstance(continuous, ContinuousReplica)
        assert continuous.policy_doc() == {
            "mode": "continuous",
            "max_batch_size": 4,
            "quantum": 2.0,
            "preempt": True,
        }
        drain = build_replicas(
            1, policy=BatchingPolicy(max_batch_size=4, max_wait_s=0.5),
            service_model=ServiceTimeModel("exion4"),
        )[0]
        assert isinstance(drain, Replica)
        # Byte-stable report contract of the drain fleet: exactly the
        # two keys scenario["policy"] always carried.
        assert drain.policy_doc() == {"max_batch_size": 4, "max_wait_s": 0.5}

    def test_tenant_weights_require_continuous(self):
        with pytest.raises(ValueError, match="continuous"):
            build_replicas(
                1, service_model=ServiceTimeModel("exion4"),
                tenant_weights={"a": 2.0},
            )


# ----------------------------------------------------------------------
# trace schema: tenants, priorities, deadlines
# ----------------------------------------------------------------------
class TestTraceSchema:
    def test_deadline_and_tenant_assignment(self):
        trace = _trace(n=6, deadline_s=3.0)
        assert [r.tenant for r in trace] == ["a", "b", "a", "b", "a", "b"]
        for request in trace:
            assert request.deadline_s == pytest.approx(request.arrival_s + 3.0)

    def test_deadline_before_arrival_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            ClusterRequest(arrival_s=5.0, model="dit", deadline_s=4.0)
        with pytest.raises(ValueError, match="deadline_s"):
            synthesize_trace(PoissonProcess(1.0), 3, deadline_s=0.0)

    def test_round_trip_preserves_scheduler_fields(self, tmp_path):
        trace = _trace(n=5, deadline_s=2.5)
        path = tmp_path / "trace.jsonl"
        save_trace(path, trace)
        loaded = load_trace(path)
        assert loaded == sorted(trace, key=lambda r: r.arrival_s)
        assert {r.tenant for r in loaded} == {"a", "b"}
        assert all(r.deadline_s is not None for r in loaded)
